"""CI perf gate: compare a fresh ``BENCH_solver.json`` against the baseline.

Usage::

    python benchmarks/perf_gate.py BENCH_solver.json \
        [--baseline benchmarks/baselines/solver_baseline.json] \
        [--threshold 0.25] [--sparse-report BENCH_sparse.json] \
        [--service-report BENCH_service.json]

Two checks, in decreasing order of trust:

* **work counters** (simplex pivots and branch & bound nodes on the engine
  corpus) are deterministic for a given corpus — they compare safely across
  machines and catch algorithmic regressions (a lost warm start, a broken
  prune) no matter where the job runs;
* **revised-core counters** (``basis_nnz``, ``eta_entries``) are gated with
  zero tolerance — exact integers for a fixed corpus, any increase means the
  factored basis got denser — and ``basis_nnz`` must stay strictly below the
  dense ``tableau_cells`` count (``refactorizations`` and
  ``tableau_cells_saved`` are reported informationally);
* **cross-dimension warm-start counters** (``dim_warm_starts``,
  ``warm_pivots_saved``, ``irredundant_rows_dropped`` from the report's
  ``dim_warm_benchmark`` section) are likewise zero-tolerance: exact for a
  fixed scheduling corpus, any decrease means the warm path stopped firing;
  ``warm_skips`` and the prober's ``irredundancy_probes`` /
  ``irredundancy_contexts`` / ``irredundancy_warm_probes`` must match the
  baseline **exactly** (any drift means the staleness gate or the per-block
  probe amortisation changed behaviour); the warm and cold legs must be
  bit-identical (``mismatches``), installs must never abort, the warm leg
  must not spend more pivots than cold — on net *and on every single
  kernel* — and the steady-state irredundancy-on wall must stay within the
  threshold of the same run's irredundancy-off leg;
* **trace cross-check** (the report's ``trace_check`` section): on golden
  kernels scheduled under the span tracer, the per-solve ``ilp.solve`` span
  deltas must sum to exactly the engine's pivot/node totals and the
  ``scheduler.run`` span must carry the run statistics verbatim — any
  divergence fails the job (a span counter attached from the wrong snapshot
  window is a lie in every trace);
* **tracing-disabled overhead** (``trace_overhead``): the guarded production
  solve path must stay within 2% of the guard-free body on the quick solver
  corpus — both legs come from the same run, so this gates across machines;
* **wall time** (``engine_seconds``) only compares within the same CPU
  budget and interpreter, so it is checked **only when the report's machine
  info matches the baseline's** (same ``cpu_count``, Python
  ``major.minor``, implementation and architecture) and skipped otherwise —
  this is why ``bench_solver.py`` embeds ``machine_info()`` in the JSON.

Either check failing a >``threshold`` (default 25%) slowdown fails the job.

Overrides, both documented in the README:

* set ``PERF_GATE_SKIP=1`` in the environment (CI wires this to the
  ``skip-perf-gate`` PR label) to skip the gate entirely;
* refresh the committed baseline from a trusted run:
  ``python benchmarks/bench_solver.py --quick --output
  benchmarks/baselines/solver_baseline.json``, then
  ``python benchmarks/bench_sparse.py --quick --update-baseline`` for the
  sparse-core section (``--sparse-report`` gates ``fm_rows_emitted``,
  ``fm_rows_pruned`` and the batched emptiness-probe counters the same way
  ``tableau_rows`` is gated, with the regression direction per counter), and
  ``python benchmarks/bench_service.py --quick --update-baseline`` for the
  service section (``--service-report`` gates the compilation service's
  cache counters: hits must not drop, misses and scheduler invocations must
  not grow — wall latencies and requests/sec stay informational).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baselines" / "solver_baseline.json"

#: Metrics that are deterministic for a fixed corpus (machine-independent).
#: ``tableau_rows`` is the total root-tableau height the engine built: a
#: regression there means variable bounds are being materialised as explicit
#: rows again instead of living in the bounded-variable simplex's column
#: boxes — exactly the kind of silent slowdown wall-time noise would hide.
WORK_COUNTERS = ("pivots", "nodes", "tableau_rows")

#: Revised-core counters, gated with a **zero** tolerance: for a fixed corpus
#: the factored-basis footprint (``basis_nnz``) and the eta-file growth
#: (``eta_entries``) are exact integers, so *any* increase means the basis
#: handling got denser — there is no noise to absorb with a threshold.
#: ``refactorizations`` is reported informationally (the refresh policy is
#: free to trade refactorisations for eta growth, and re-inversion is
#: observably transparent).
REVISED_STRICT_COUNTERS = ("basis_nnz", "eta_entries")
REVISED_INFO_COUNTERS = ("refactorizations", "tableau_cells_saved")

#: Deterministic counters of the sparse polyhedral core, gated when a
#: ``--sparse-report`` (from ``bench_sparse.py``) is provided.  Direction
#: matters: emitted rows and emptiness probes regress *upward* (pruning or
#: probe batching broke), pruned rows regress *downward* (the redundancy
#: filters stopped firing).
SPARSE_LOWER_IS_BETTER = (
    "fm_rows_emitted",
    "emptiness_probes",
    "emptiness_engine_probes",
)
SPARSE_HIGHER_IS_BETTER = ("fm_rows_pruned",)

#: Deterministic cache counters of the compilation service, gated when a
#: ``--service-report`` (from ``bench_service.py``) is provided.  The bench's
#: three passes over a fixed corpus fully determine them: hits regressing
#: *downward* means a cache layer stopped answering, misses or scheduler
#: invocations regressing *upward* means work the caches used to absorb is
#: being redone.
SERVICE_LOWER_IS_BETTER = ("store_misses", "scheduler_runs")
SERVICE_HIGHER_IS_BETTER = ("store_hits", "memory_hits", "store_puts")

#: Cross-dimension warm-start counters, gated with **zero** tolerance like the
#: revised-core ones: for a fixed scheduling corpus the number of dimensions
#: warm-seeded, the basic columns installed from the previous dimension's
#: factored basis, and the redundant rows dropped by the LP irredundancy pass
#: are exact integers.  Any decrease means the warm path silently stopped
#: firing (a broken signature match, a disabled prune) while schedules stay
#: bit-identical — exactly the regression wall time would hide.
DIM_WARM_HIGHER_IS_BETTER = (
    "dim_warm_starts",
    "warm_pivots_saved",
    "irredundant_rows_dropped",
)

#: Exact-match dim-warm counters: the staleness gate's skip count and the
#: prober's probe/context/warm-probe counts are fully determined by the
#: corpus, so *any* drift — up or down — means the gate or the prober changed
#: behaviour and the baseline must be refreshed consciously.  (``warm_skips``
#: growing would mean hints started failing the signature match; probes
#: growing would mean the verdict cache or the per-block context amortisation
#: stopped working; either shrinking would mean coverage was lost.)
DIM_WARM_EXACT = (
    "warm_skips",
    "irredundancy_probes",
    "irredundancy_contexts",
    "irredundancy_warm_probes",
)

#: Hard budget for the *disabled* tracing path, as a fraction of the
#: guard-free solve time on the quick solver corpus (``trace_overhead`` in
#: the report).  The span tracer's contract is a guaranteed no-op when off;
#: both legs are measured in the same run on the same host, so the ratio is
#: gated even when the baseline machine differs.
TRACE_OVERHEAD_BUDGET = 0.02


def _machine_signature(report: dict) -> tuple:
    machine = report.get("machine") or {}
    version = str(machine.get("python_version", ""))
    return (
        machine.get("cpu_count"),
        ".".join(version.split(".")[:2]),
        machine.get("python_implementation"),
        machine.get("machine"),
        machine.get("system"),
    )


def compare(report: dict, baseline: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Return (failures, notes) of *report* against *baseline*."""
    failures: list[str] = []
    notes: list[str] = []

    if report.get("quick") != baseline.get("quick"):
        # A silent skip here would disable the gate forever after a bad
        # baseline refresh; a corpus mismatch is a misconfiguration and
        # must be loud.
        failures.append(
            "corpus mismatch (quick=%r vs baseline quick=%r): refresh the "
            "baseline with the same bench_solver.py flags CI uses"
            % (report.get("quick"), baseline.get("quick"))
        )
        return failures, notes

    if report.get("mismatches"):
        failures.append(
            f"engine/oracle mismatches in the report: {report['mismatches']}"
        )

    current_stats = report.get("engine_statistics") or {}
    baseline_stats = baseline.get("engine_statistics") or {}
    for counter in WORK_COUNTERS:
        before = baseline_stats.get(counter)
        after = current_stats.get(counter)
        if not before or after is None:
            notes.append(f"work counter {counter!r} missing; skipped")
            continue
        ratio = after / before
        line = f"{counter}: {before} -> {after} ({ratio:.2f}x)"
        if ratio > 1.0 + threshold:
            failures.append(f"work regression: {line} exceeds +{threshold:.0%}")
        else:
            notes.append(line)

    if report.get("core_mismatches"):
        failures.append(
            "revised/tableau cores disagree (assignments or node_key): "
            f"{report['core_mismatches']}"
        )
    deepnest = report.get("deepnest_benchmark") or {}
    if deepnest.get("mismatches"):
        failures.append(
            f"revised/tableau schedule mismatches on the deep-nest corpus: "
            f"{deepnest['mismatches']}"
        )
    elif deepnest:
        notes.append(
            "deepnest: revised %.3fs vs tableau %.3fs (%.2fx)"
            % (
                deepnest.get("revised_seconds", 0.0),
                deepnest.get("tableau_seconds", 0.0),
                deepnest.get("speedup") or 0.0,
            )
        )

    dim_warm = report.get("dim_warm_benchmark") or {}
    if dim_warm:
        if dim_warm.get("mismatches"):
            failures.append(
                "warm-start schedules diverge from the cold leg "
                f"(rows or node_key): {dim_warm['mismatches']}"
            )
        if dim_warm.get("warm_aborts"):
            failures.append(
                f"warm-basis installs aborted {dim_warm['warm_aborts']} times "
                "— the engine fell back to cold rebuilds"
            )
        warm_pivots = dim_warm.get("warm_pivots")
        cold_pivots = dim_warm.get("cold_pivots")
        if warm_pivots is not None and cold_pivots is not None:
            line = f"dim-warm pivots: warm {warm_pivots} vs cold {cold_pivots}"
            if warm_pivots > cold_pivots:
                # The warm leg's whole reason to exist: reusing the previous
                # dimension's basis must never cost pivots on net.
                failures.append(f"warm leg spends more pivots than cold: {line}")
            else:
                notes.append(line)
        warm_by_kernel = dim_warm.get("warm_pivots_by_kernel") or {}
        cold_by_kernel = dim_warm.get("cold_pivots_by_kernel") or {}
        for kernel, warm_count in warm_by_kernel.items():
            cold_count = cold_by_kernel.get(kernel)
            if cold_count is None:
                continue
            line = f"dim-warm pivots[{kernel}]: warm {warm_count} vs cold {cold_count}"
            if warm_count > cold_count:
                # Per kernel, not just on net: the triangular-nest regression
                # hid inside a corpus-wide sum that rectangular kernels kept
                # positive while cholesky-style nests paid extra pivots.
                failures.append(
                    f"warm leg spends more pivots than cold on one kernel: {line}"
                )
            else:
                notes.append(line)
        warm_wall = dim_warm.get("warm_seconds")
        noprune_wall = dim_warm.get("irredundancy_off_seconds")
        if warm_wall is not None and noprune_wall:
            # Same run, same machine: the default-on irredundancy pass must
            # pay for itself in steady state (shared verdict store warm)
            # against the identical corpus with pruning disabled.
            ratio = warm_wall / noprune_wall
            line = (
                f"irredundancy wall: on {warm_wall:.3f}s vs off "
                f"{noprune_wall:.3f}s ({ratio:.2f}x)"
            )
            if ratio > 1.0 + threshold:
                failures.append(
                    f"irredundancy pass no longer pays for itself: {line} "
                    f"exceeds +{threshold:.0%}"
                )
            else:
                notes.append(line)
        baseline_dim_warm = baseline.get("dim_warm_benchmark") or {}
        for counter in DIM_WARM_HIGHER_IS_BETTER:
            before = baseline_dim_warm.get(counter)
            after = dim_warm.get(counter)
            if before is None or after is None:
                notes.append(f"dim-warm counter {counter!r} missing; skipped")
                continue
            line = f"{counter}: {before} -> {after}"
            if after < before:
                failures.append(
                    f"dim-warm regression: {line} — the cross-dimension warm "
                    "path stopped firing (zero tolerance: these counters are "
                    "exact for a fixed corpus)"
                )
            else:
                notes.append(line)
        for counter in DIM_WARM_EXACT:
            before = baseline_dim_warm.get(counter)
            after = dim_warm.get(counter)
            if before is None or after is None:
                notes.append(f"dim-warm counter {counter!r} missing; skipped")
                continue
            line = f"{counter}: {before} -> {after}"
            if after != before:
                failures.append(
                    f"dim-warm drift: {line} — the staleness gate or the "
                    "prober changed behaviour (these counters are exact for "
                    "a fixed corpus; refresh the baseline if intentional)"
                )
            else:
                notes.append(line)

    trace_check = report.get("trace_check") or {}
    if trace_check:
        if trace_check.get("divergences"):
            for kernel, check in (trace_check.get("checks") or {}).items():
                if not check.get("counters_match"):
                    failures.append(
                        "trace divergence on %s: span pivots/nodes/solves "
                        "(%s/%s/%s) != engine statistics (%s/%s/%s) — a span "
                        "counter is attached from the wrong snapshot window"
                        % (
                            kernel,
                            check.get("span_pivots"),
                            check.get("span_nodes"),
                            check.get("ilp_spans"),
                            check.get("engine_pivots"),
                            check.get("engine_nodes"),
                            check.get("solve_calls"),
                        )
                    )
        else:
            notes.append(
                "trace check: span counters identical to engine statistics on "
                + ", ".join(trace_check.get("kernels") or [])
            )
    trace_overhead = report.get("trace_overhead") or {}
    overhead = trace_overhead.get("overhead_fraction")
    if overhead is not None:
        # Both legs of the overhead measurement come from the same run on the
        # same host, so the ratio gates even across machines.  2% is the
        # observability layer's hard budget for the disabled path.
        line = (
            "tracing-disabled overhead: %.2f%% (direct %.3fs vs disabled %.3fs)"
            % (
                overhead * 100.0,
                trace_overhead.get("direct_seconds") or 0.0,
                trace_overhead.get("disabled_seconds") or 0.0,
            )
        )
        if overhead > TRACE_OVERHEAD_BUDGET:
            failures.append(
                f"disabled tracing is no longer free: {line} exceeds "
                f"{TRACE_OVERHEAD_BUDGET:.0%}"
            )
        else:
            notes.append(line)

    for counter in REVISED_STRICT_COUNTERS:
        before = baseline_stats.get(counter)
        after = current_stats.get(counter)
        if before is None or after is None:
            notes.append(f"revised counter {counter!r} missing; skipped")
            continue
        line = f"{counter}: {before} -> {after}"
        if after > before:
            failures.append(
                f"revised-core regression: {line} — the factored basis got "
                "denser (zero tolerance: these counters are exact for a "
                "fixed corpus)"
            )
        else:
            notes.append(line)
    for counter in REVISED_INFO_COUNTERS:
        before = baseline_stats.get(counter)
        after = current_stats.get(counter)
        if before is not None and after is not None:
            notes.append(f"{counter}: {before} -> {after} (informational)")
    basis_nnz = current_stats.get("basis_nnz")
    tableau_cells = current_stats.get("tableau_cells")
    if basis_nnz and tableau_cells is not None:
        # The revised core's reason to exist: the factored bases must store
        # strictly fewer non-zeros than the dense tableau materialises cells.
        line = f"basis_nnz {basis_nnz} vs tableau_cells {tableau_cells}"
        if basis_nnz >= tableau_cells:
            failures.append(f"factored basis denser than the dense tableau: {line}")
        else:
            notes.append(line)

    if _machine_signature(report) == _machine_signature(baseline):
        before = baseline.get("engine_seconds")
        after = report.get("engine_seconds")
        if before and after is not None:
            ratio = after / before
            line = f"engine_seconds: {before:.3f}s -> {after:.3f}s ({ratio:.2f}x)"
            if ratio > 1.0 + threshold:
                failures.append(f"wall-time regression: {line} exceeds +{threshold:.0%}")
            else:
                notes.append(line)
        else:
            notes.append("engine_seconds missing; wall-time check skipped")
    else:
        notes.append(
            "machine info differs from the baseline "
            f"({_machine_signature(report)} vs {_machine_signature(baseline)}); "
            "wall-time check skipped, work counters still gated"
        )
    return failures, notes


def compare_sparse(report: dict, baseline: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Gate a ``bench_sparse.py`` report against the baseline's 'sparse' section."""
    failures: list[str] = []
    notes: list[str] = []
    section = baseline.get("sparse")
    if not section:
        # Loud, like a missing baseline file: silently skipping would turn
        # the sparse gate off forever after a bad refresh.
        failures.append(
            "baseline has no 'sparse' section; refresh it with "
            "`python benchmarks/bench_sparse.py --quick --update-baseline`"
        )
        return failures, notes
    if report.get("quick") != section.get("quick"):
        failures.append(
            "sparse corpus mismatch (quick=%r vs baseline quick=%r): refresh the "
            "baseline with the same bench_sparse.py flags CI uses"
            % (report.get("quick"), section.get("quick"))
        )
        return failures, notes
    if report.get("mismatches"):
        failures.append(
            f"sparse/dense schedule mismatches in the report: {report['mismatches']}"
        )
    statistics = report.get("sparse_statistics") or {}
    for counter, lower_is_better in [
        (name, True) for name in SPARSE_LOWER_IS_BETTER
    ] + [(name, False) for name in SPARSE_HIGHER_IS_BETTER]:
        before = section.get(counter)
        after = statistics.get(counter)
        if before is None or after is None:
            notes.append(f"sparse counter {counter!r} missing; skipped")
            continue
        if before == 0:
            # A zero baseline admits no ratio: any growth of a lower-is-better
            # counter is a regression (0 -> N is an infinite slowdown); a
            # higher-is-better counter cannot drop below zero.
            line = f"{counter}: {before} -> {after}"
            if lower_is_better and after > 0:
                failures.append(f"sparse-core regression: {line} grew from a zero baseline")
            else:
                notes.append(line)
            continue
        ratio = after / before
        line = f"{counter}: {before} -> {after} ({ratio:.2f}x)"
        regressed = (
            ratio > 1.0 + threshold if lower_is_better else ratio < 1.0 - threshold
        )
        if regressed:
            failures.append(f"sparse-core regression: {line} exceeds {threshold:.0%}")
        else:
            notes.append(line)
    return failures, notes


def compare_service(report: dict, baseline: dict, threshold: float) -> tuple[list[str], list[str]]:
    """Gate a ``bench_service.py`` report against the baseline's 'service' section."""
    failures: list[str] = []
    notes: list[str] = []
    section = baseline.get("service")
    if not section:
        # Loud, like the sparse gate: silently skipping would turn the
        # service gate off forever after a bad refresh.
        failures.append(
            "baseline has no 'service' section; refresh it with "
            "`python benchmarks/bench_service.py --quick --update-baseline`"
        )
        return failures, notes
    if report.get("quick") != section.get("quick"):
        failures.append(
            "service corpus mismatch (quick=%r vs baseline quick=%r): refresh the "
            "baseline with the same bench_service.py flags CI uses"
            % (report.get("quick"), section.get("quick"))
        )
        return failures, notes
    if report.get("mismatches"):
        failures.append(
            f"non-identical cached schedules in the service report: {report['mismatches']}"
        )
    if report.get("wrong_cache_origins"):
        failures.append(
            "compiles answered by an unexpected cache layer: "
            f"{report['wrong_cache_origins']}"
        )
    statistics = report.get("service_statistics") or {}
    for counter, lower_is_better in [
        (name, True) for name in SERVICE_LOWER_IS_BETTER
    ] + [(name, False) for name in SERVICE_HIGHER_IS_BETTER]:
        before = section.get(counter)
        after = statistics.get(counter)
        if before is None or after is None:
            notes.append(f"service counter {counter!r} missing; skipped")
            continue
        if before == 0:
            line = f"{counter}: {before} -> {after}"
            if lower_is_better and after > 0:
                failures.append(f"service regression: {line} grew from a zero baseline")
            else:
                notes.append(line)
            continue
        ratio = after / before
        line = f"{counter}: {before} -> {after} ({ratio:.2f}x)"
        regressed = (
            ratio > 1.0 + threshold if lower_is_better else ratio < 1.0 - threshold
        )
        if regressed:
            failures.append(f"service regression: {line} exceeds {threshold:.0%}")
        else:
            notes.append(line)
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="fresh BENCH_solver.json to check")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed slowdown fraction (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--sparse-report",
        default=None,
        help="optional BENCH_sparse.json; gates the sparse-core counters "
        "against the baseline's 'sparse' section",
    )
    parser.add_argument(
        "--service-report",
        default=None,
        help="optional BENCH_service.json; gates the compilation service's "
        "cache counters against the baseline's 'service' section",
    )
    arguments = parser.parse_args(argv)

    if os.environ.get("PERF_GATE_SKIP", "").strip().lower() in ("1", "true", "yes"):
        print("perf gate: skipped (PERF_GATE_SKIP set)")
        return 0

    baseline_path = Path(arguments.baseline)
    if not baseline_path.exists():
        # The baseline is committed to the repository; its absence means the
        # gate has been misconfigured (moved/renamed file) — failing open
        # here would silently disable regression gating while CI stays green.
        print(
            f"perf gate: FAIL — no baseline at {baseline_path}; commit one with "
            "`python benchmarks/bench_solver.py --quick --output "
            f"{baseline_path}` or set PERF_GATE_SKIP=1",
            file=sys.stderr,
        )
        return 1

    report = json.loads(Path(arguments.report).read_text())
    baseline = json.loads(baseline_path.read_text())
    failures, notes = compare(report, baseline, arguments.threshold)
    if arguments.sparse_report:
        sparse_report = json.loads(Path(arguments.sparse_report).read_text())
        sparse_failures, sparse_notes = compare_sparse(
            sparse_report, baseline, arguments.threshold
        )
        failures.extend(sparse_failures)
        notes.extend(sparse_notes)
    if arguments.service_report:
        service_report = json.loads(Path(arguments.service_report).read_text())
        service_failures, service_notes = compare_service(
            service_report, baseline, arguments.threshold
        )
        failures.extend(service_failures)
        notes.extend(service_notes)
    for note in notes:
        print(f"perf gate: {note}")
    for failure in failures:
        print(f"perf gate: FAIL — {failure}", file=sys.stderr)
    if failures:
        print(
            "perf gate: regression detected. If intentional, refresh the baseline "
            "(benchmarks/perf_gate.py docstring) or apply the 'skip-perf-gate' "
            "label / PERF_GATE_SKIP=1.",
            file=sys.stderr,
        )
        return 1
    print("perf gate: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
