"""Benchmark regenerating Fig. 2 (PolyBench speedups over Pluto, three machines)."""

from __future__ import annotations

import pytest

from repro.experiments.fig2 import QUICK_KERNELS, main, run_fig2
from repro.experiments.harness import geometric_mean
from repro.suites.polybench import FIG2_KERNELS

from .conftest import full_run


@pytest.mark.parametrize("machine", ["AMD", "Intel1", "Intel2"])
def test_fig2_reproduction(benchmark, machine):
    kernels = FIG2_KERNELS if full_run() else QUICK_KERNELS[:4]
    rows = benchmark.pedantic(run_fig2, args=(machine, kernels), iterations=1, rounds=1)
    assert len(rows) == len(kernels)
    # Shape check: the kernel-specific configuration is at least as good as the
    # generic strategies on every kernel (the paper's central claim for Fig. 2),
    # and its geomean speedup over Pluto is >= 1.
    for row in rows:
        assert row.speedups["kernel-spec"] >= row.speedups["pluto-style"] - 1e-9
        assert row.speedups["kernel-spec"] >= row.speedups["tensor-scheduler-style"] - 1e-9
        assert row.speedups["kernel-spec"] >= row.speedups["isl-style"] - 1e-9
    geomean = geometric_mean([row.speedups["kernel-spec"] for row in rows])
    assert geomean >= 1.0
    print()
    main(machine, kernels)
