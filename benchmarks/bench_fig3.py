"""Benchmark regenerating Fig. 3 (jacobi-1d dataset-size sweep)."""

from __future__ import annotations

from repro.experiments.fig3 import SIZE_LABELS, main, run_fig3

from .conftest import full_run

QUICK_SIZES = (("large", 1.0), ("4xlarge", 4.0), ("8xlarge", 8.0), ("16xlarge", 16.0))


def test_fig3_reproduction(benchmark):
    sizes = SIZE_LABELS if full_run() else QUICK_SIZES
    points = benchmark.pedantic(run_fig3, args=("Intel1", sizes), iterations=1, rounds=1)
    assert len(points) == len(sizes)
    # Shape check: the advantage of the large-size-dedicated configuration
    # shrinks as the dataset grows (Pluto's wavefront parallelism amortises its
    # overhead on large problems), while the pluto-style configuration stays
    # close to 1x at every size.
    assert points[0].dedicated_speedup > points[-1].dedicated_speedup
    for point in points:
        assert 0.5 <= point.pluto_style_speedup <= 2.0
    print()
    main("Intel1", sizes)
