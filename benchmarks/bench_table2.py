"""Benchmark regenerating Table II (PolyMage pipelines)."""

from __future__ import annotations

from repro.experiments.table2 import main, run_table2
from repro.suites.polymage import POLYMAGE_PIPELINES

from .conftest import full_run

QUICK_PIPELINES = ("harris", "unsharp-mask")


def test_table2_reproduction(benchmark):
    pipelines = tuple(POLYMAGE_PIPELINES) if full_run() else QUICK_PIPELINES
    rows = benchmark.pedantic(run_table2, args=("Intel1", pipelines), iterations=1, rounds=1)
    assert len(rows) == len(pipelines)
    for row in rows:
        ours = row.timings_ms["polytops"]
        assert ours is not None and ours > 0
        # Shape check: PolyTOPS is on par with (or better than) the tools that
        # support the pipeline, within a 25% tolerance as in the paper's table.
        for tool, timing in row.timings_ms.items():
            if tool == "polytops" or timing is None:
                continue
            assert ours <= timing * 1.25
    print()
    main("Intel1", pipelines)
