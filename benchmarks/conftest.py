"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  By default the
PolyBench-based benchmarks run on a representative subset of kernels so that a
full ``pytest benchmarks/ --benchmark-only`` pass stays in the minutes range;
set ``REPRO_FULL=1`` to sweep the complete kernel lists used in the paper.
"""

from __future__ import annotations

import os

import pytest


def full_run() -> bool:
    """True when the complete (slow) experiment sweeps are requested."""
    return os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def repro_full() -> bool:
    return full_run()
