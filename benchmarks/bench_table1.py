"""Benchmark regenerating Table I (Ascend 910 custom operators).

Run with ``pytest benchmarks/bench_table1.py --benchmark-only``.  The benchmark
times the full pipeline (scheduling + code generation + simulation) and prints
the reproduced table, including the isl-vs-PolyTOPS speedup per operator/size.
"""

from __future__ import annotations

from repro.experiments.table1 import TABLE1_CASES, main, run_table1

from .conftest import full_run

QUICK_CASES = [
    ("lu_decomp", "16x16", {"n": 12}),
    ("trsmL_off_diag", "16x16x16", {"rows": 10, "blocks": 1, "lanes": 8}),
    ("trsmL_off_diag", "16x16x32", {"rows": 10, "blocks": 2, "lanes": 8}),
    ("trsmL_off_diag", "16x16x48", {"rows": 10, "blocks": 3, "lanes": 8}),
    ("trsmU_transpose", "16x16x16", {"rows": 10, "cols": 12}),
    ("trsmU_transpose", "16x32x16", {"rows": 10, "cols": 24}),
]


def test_table1_reproduction(benchmark):
    cases = TABLE1_CASES if full_run() else QUICK_CASES
    rows = benchmark.pedantic(run_table1, args=(cases,), iterations=1, rounds=1)
    assert rows
    speedups = [row.speedup for row in rows]
    # Shape check: PolyTOPS with vectorisation directives wins on the trsm
    # operators (the paper's headline result for the NPU scenario).
    trsm_speedups = [row.speedup for row in rows if row.operator != "lu_decomp"]
    assert max(trsm_speedups) > 1.0
    print()
    main(cases=cases)
