"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a figure of the paper; they quantify the impact of
individual configuration features of PolyTOPS on a fixed kernel set:

* cost-function order (proximity-first vs. contiguity-first),
* the fusion heuristic (smartfuse-like vs. maximal fusion vs. full distribution),
* the coefficient bound of the ILP search space,
* scheduling time of the iterative scheduler itself (compile-time cost).
"""

from __future__ import annotations

import pytest

from repro.deps import compute_dependences
from repro.experiments.harness import ExperimentHarness, geometric_mean
from repro.machine import intel_xeon_e5_2683
from repro.scheduler import (
    FusionSpec,
    PolyTOPSScheduler,
    kernel_specific,
    pluto_style,
    tensor_scheduler_style,
)
from repro.suites.polybench import build_kernel

KERNELS = ("gemm", "atax", "mvt")


def test_cost_function_order_ablation(benchmark):
    harness = ExperimentHarness(intel_xeon_e5_2683())

    def run():
        results = {}
        for kernel in KERNELS:
            scop = build_kernel(kernel)
            proximity_first = harness.evaluate(scop, pluto_style())
            contiguity_first = harness.evaluate(scop, tensor_scheduler_style())
            results[kernel] = contiguity_first.cycles / proximity_first.cycles
        return results

    ratios = benchmark.pedantic(run, iterations=1, rounds=1)
    assert all(ratio > 0 for ratio in ratios.values())
    print("\ncontiguity-first vs proximity-first cycle ratios:", ratios)


def test_fusion_heuristic_ablation(benchmark):
    harness = ExperimentHarness(intel_xeon_e5_2683())
    variants = {
        "smartfuse": kernel_specific(name="smartfuse"),
        "maxfuse": kernel_specific(name="maxfuse", dimensionality_fusion_heuristic=False),
        "nofuse": kernel_specific(
            name="nofuse", fusion=(FusionSpec(dimension=0, total_distribution=True),)
        ),
    }

    def run():
        table = {}
        for kernel in ("atax", "gemver" if False else "mvt"):
            scop = build_kernel(kernel)
            table[kernel] = {
                name: harness.evaluate(scop, config, label=f"{name}-{kernel}").cycles
                for name, config in variants.items()
            }
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    assert table
    print("\nfusion heuristic cycles:", table)


@pytest.mark.parametrize("bound", [2, 4])
def test_coefficient_bound_ablation(benchmark, bound):
    def run():
        scop = build_kernel("gemm")
        deps = compute_dependences(scop)
        config = pluto_style()
        config.coefficient_bound = bound
        result = PolyTOPSScheduler(scop, config, dependences=deps).schedule()
        return result.statistics["ilp_solved"]

    solved = benchmark.pedantic(run, iterations=1, rounds=1)
    assert solved >= 1


def test_scheduling_time(benchmark):
    """Compile-time cost of the scheduler itself (the paper's tool runs in ms)."""
    scop = build_kernel("2mm")
    deps = compute_dependences(scop)

    def run():
        return PolyTOPSScheduler(scop, pluto_style(), dependences=deps).schedule()

    result = benchmark(run)
    assert not result.fallback_to_original
