"""Benchmark regenerating Fig. 4 (PolyTOPS vs. Pluto+, Pluto-lp-dfp, isl-PPCG)."""

from __future__ import annotations

from repro.experiments.fig4 import main, run_fig4
from repro.experiments.harness import geometric_mean
from repro.suites.polybench import FIG2_KERNELS

from .conftest import full_run

QUICK_KERNELS = ("jacobi-1d", "atax", "bicg", "gemm")


def test_fig4_reproduction(benchmark):
    kernels = FIG2_KERNELS if full_run() else QUICK_KERNELS
    rows = benchmark.pedantic(run_fig4, args=("Intel1", kernels), iterations=1, rounds=1)
    assert len(rows) == len(kernels)
    # Shape check: the kernel-specific PolyTOPS configuration is competitive
    # with every comparison tool in geomean (the paper's Fig. 4 conclusion).
    polytops = geometric_mean([row.speedups["polytops"] for row in rows])
    for tool in ("pluto-lp-dfp", "pluto+", "isl-ppcg"):
        others = geometric_mean([row.speedups[tool] for row in rows])
        assert polytops >= others * 0.9
    print()
    main("Intel1", kernels)
