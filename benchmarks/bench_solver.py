"""Microbenchmark of the ILP solver stack: incremental engine vs. dense oracle.

Two usage modes:

* ``pytest benchmarks/bench_solver.py --benchmark-only`` — times the
  incremental engine on the problem corpus and differentially checks every
  answer against the retained dense oracle.
* ``PYTHONPATH=src python benchmarks/bench_solver.py [--quick] [--output
  BENCH_solver.json]`` — standalone script (no pytest plugins needed) that
  times both paths and writes a JSON artifact, giving CI a perf trajectory
  across PRs.

The corpus mixes synthetic scheduler-shaped MILPs (bounded integer variables,
mixed-sense rows, one or two lexicographic objectives) with the *real*
per-dimension problems of a few PolyBench kernels, captured by running the
PolyTOPS scheduler with an instrumented solver.

The emitted ``engine_statistics`` include the bounded-variable simplex
counters — ``tableau_rows`` (total root tableau height built),
``bound_flips`` and ``rows_saved`` — which ``benchmarks/perf_gate.py`` gates
against the committed baseline: a change that re-materialises variable
bounds as explicit rows shows up as a ``tableau_rows`` regression even when
wall time is too noisy to notice.  The revised-core counters ride along:
``basis_nnz`` (non-zeros stored by the factored bases), ``eta_entries``
(update-file growth), ``refactorizations`` and ``tableau_cells_saved``
(dense cells the sparse rows never materialised); the gate fails on *any*
``basis_nnz``/``eta_entries`` increase and checks ``basis_nnz`` stays below
the dense ``tableau_cells`` count.

Every run also times the corpus under ``core="tableau"`` (the retained dense
reference) and bit-compares assignments and ``node_key`` witnesses against
the revised core, and schedules the deep-nest corpus under both cores —
the regime the revised simplex exists for.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make `import repro` resolvable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ilp import IlpSolver, LinearProblem, SolverOptions
from repro.ilp.engine import IncrementalIlpEngine


def machine_info() -> dict:
    """The host facts the CI perf gate needs to rule out apples-vs-oranges.

    Wall-clock numbers only compare safely between hosts with the same CPU
    budget and interpreter; the gate skips its timing check (and keeps the
    machine-independent work-counter check) when these differ.
    """
    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def synthetic_problems(count: int, seed: int = 20260730) -> list[LinearProblem]:
    """Random scheduler-shaped MILPs (bounded integers, mixed senses)."""
    rng = random.Random(seed)
    problems: list[LinearProblem] = []
    for _ in range(count):
        problem = LinearProblem()
        n = rng.randint(3, 8)
        names = [f"x{i}" for i in range(n)]
        for name in names:
            problem.add_variable(name, 0, rng.randint(2, 8))
        for _ in range(rng.randint(2, 2 * n)):
            coefficients = {
                name: rng.randint(-3, 3)
                for name in rng.sample(names, rng.randint(1, n))
            }
            coefficients = {k: v for k, v in coefficients.items() if v}
            if not coefficients:
                continue
            problem.add_constraint(
                coefficients, rng.choice([">=", "<=", "=="]), rng.randint(-4, 10)
            )
        for _ in range(rng.randint(1, 2)):
            objective = {name: rng.randint(-3, 3) for name in names}
            objective = {k: v for k, v in objective.items() if v}
            if objective:
                problem.add_objective(objective)
        problems.append(problem)
    return problems


def scheduler_problems(quick: bool) -> list[LinearProblem]:
    """The real per-dimension ILPs of a few PolyBench kernels."""
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.solver_context import SolverContext
    from repro.suites.polybench.blas import gemm, gemver
    from repro.suites.polybench.stencils import jacobi_2d

    scops = [gemm(8, 8, 8), jacobi_2d(8, 4)]
    if not quick:
        scops.append(gemver(10))

    captured: list[LinearProblem] = []
    original_solve = SolverContext.solve

    def capturing_solve(self, problem):
        captured.append(problem.copy())
        return original_solve(self, problem)

    SolverContext.solve = capturing_solve
    try:
        for scop in scops:
            PolyTOPSScheduler(scop).schedule()
    finally:
        SolverContext.solve = original_solve
    return captured


def _solve_all(
    problems: list[LinearProblem],
    engine: str,
    workers: int = 1,
    processes: bool = False,
    core: str | None = None,
) -> tuple[float, list, IlpSolver]:
    solver = IlpSolver(
        options=SolverOptions.resolve(
            engine=engine, workers=workers, processes=processes, core=core
        )
    )
    solutions = []
    started = time.perf_counter()
    try:
        for problem in problems:
            solutions.append(solver.solve(problem))
    finally:
        solver.close()
    return time.perf_counter() - started, solutions, solver


def branching_heavy_problems(count: int, seed: int = 8128) -> list[LinearProblem]:
    """Knapsack-style MILPs with deep B&B trees (the parallel corpus).

    The scheduler's own problems rarely branch (their relaxations are almost
    always integral), so the parallel layer is exercised on a corpus where
    branch & bound is the actual cost.
    """
    rng = random.Random(seed)
    problems: list[LinearProblem] = []
    for _ in range(count):
        problem = LinearProblem()
        n = rng.randint(5, 7)
        coefficients = rng.sample([2, 3, 5, 7, 11, 13, 17, 19], n)
        for index in range(n):
            problem.add_variable(f"x{index}", 0, rng.randint(3, 5))
        problem.add_constraint(
            {f"x{index}": value for index, value in enumerate(coefficients)},
            "==",
            rng.randint(20, 40),
        )
        problem.add_objective({f"x{index}": 1 for index in range(n)})
        problems.append(problem)
    return problems


def run_workers(workers: int, quick: bool = False, processes: bool = False) -> dict:
    """Time the B&B-heavy corpus with 1 vs *workers* workers (determinism checked)."""
    problems = branching_heavy_problems(6 if quick else 24)
    base_seconds, base_solutions, _ = _solve_all(problems, "incremental", workers=1)
    par_seconds, par_solutions, par_solver = _solve_all(
        problems, "incremental", workers=workers, processes=processes
    )
    mismatches = sum(
        1
        for a, b in zip(base_solutions, par_solutions)
        if (a is None) != (b is None)
        or (a is not None and (a.assignment, a.node_key) != (b.assignment, b.node_key))
    )
    return {
        "workers": workers,
        "mode": "process" if processes else "thread",
        "problems": len(problems),
        "sequential_seconds": base_seconds,
        "parallel_seconds": par_seconds,
        "speedup": (base_seconds / par_seconds) if par_seconds else None,
        "mismatches": mismatches,
        "parallel_statistics": par_solver.statistics_summary(),
    }


def run(quick: bool = False) -> dict:
    """Time all three solver paths over the corpus and differentially compare.

    The engine runs twice — ``core="revised"`` (the default, reported as
    ``engine_seconds``/``engine_statistics``) and ``core="tableau"`` (the
    dense reference) — and both are checked against the oracle's objective
    values.  The two cores must additionally be *bit-identical*: same
    assignments, same branch & bound ``node_key`` witnesses.
    """
    problems = synthetic_problems(12 if quick else 60) + scheduler_problems(quick)
    engine_seconds, engine_solutions, engine_solver = _solve_all(
        problems, "incremental", core="revised"
    )
    tableau_seconds, tableau_solutions, _ = _solve_all(
        problems, "incremental", core="tableau"
    )
    oracle_seconds, oracle_solutions, _ = _solve_all(problems, "oracle")

    mismatches = 0
    for a, b in zip(engine_solutions, oracle_solutions):
        if (a is None) != (b is None):
            mismatches += 1
        elif a is not None and a.objective_values != b.objective_values:
            mismatches += 1
    core_mismatches = sum(
        1
        for a, b in zip(engine_solutions, tableau_solutions)
        if (a is None) != (b is None)
        or (a is not None and (a.assignment, a.node_key) != (b.assignment, b.node_key))
    )

    return {
        "problems": len(problems),
        "quick": quick,
        "machine": machine_info(),
        "engine_seconds": engine_seconds,
        "tableau_seconds": tableau_seconds,
        "oracle_seconds": oracle_seconds,
        "speedup_vs_oracle": (oracle_seconds / engine_seconds)
        if engine_seconds
        else None,
        "speedup_vs_tableau": (tableau_seconds / engine_seconds)
        if engine_seconds
        else None,
        "mismatches": mismatches,
        "core_mismatches": core_mismatches,
        "engine_statistics": engine_solver.statistics_summary(),
    }


def run_deepnest(quick: bool = False) -> dict:
    """Schedule the deep-nest corpus under both cores and compare wall clock.

    This is the corpus the revised core exists for: 5-7 deep nests whose
    dense tableaus are wide and nearly empty.  Each run pins
    ``REPRO_ILP_CORE`` so the *whole* stack — the scheduling ILPs and the
    dependence analysis' batched emptiness probes alike — goes through one
    core (the ``solver_core`` config knob only switches the scheduling
    solver).  Schedules must be identical row for row; the timing gap is the
    headline number.
    """
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.strategies import pluto_style
    from repro.suites.deepnest import build_deepnest, deepnest_names

    kernels = ("tc-5d", "tc-6d", "polymage-deep") if quick else tuple(deepnest_names())
    timings: dict[str, dict[str, float]] = {}
    mismatches = 0
    totals = {"revised": 0.0, "tableau": 0.0}
    saved_core = os.environ.get("REPRO_ILP_CORE")
    try:
        for kernel in kernels:
            rows: dict[str, dict] = {}
            timings[kernel] = {}
            for core in ("revised", "tableau"):
                os.environ["REPRO_ILP_CORE"] = core
                scop = build_deepnest(kernel)
                started = time.perf_counter()
                result = PolyTOPSScheduler(scop, pluto_style()).schedule()
                elapsed = time.perf_counter() - started
                timings[kernel][core] = elapsed
                totals[core] += elapsed
                rows[core] = {
                    name: [str(row) for row in statement.rows]
                    for name, statement in result.schedule.statements.items()
                }
            if rows["revised"] != rows["tableau"]:
                mismatches += 1
    finally:
        if saved_core is None:
            os.environ.pop("REPRO_ILP_CORE", None)
        else:
            os.environ["REPRO_ILP_CORE"] = saved_core
    return {
        "quick": quick,
        "kernels": list(kernels),
        "timings": timings,
        "revised_seconds": totals["revised"],
        "tableau_seconds": totals["tableau"],
        "speedup": (totals["tableau"] / totals["revised"])
        if totals["revised"]
        else None,
        "mismatches": mismatches,
    }


def _schedule_leg(
    kernels: tuple[str, ...], options: SolverOptions
) -> tuple[dict, dict, dict, dict, float]:
    """Schedule *kernels* under *options*; rows, node keys, counters, seconds.

    Counters come back twice: summed over the corpus and per kernel (the
    per-kernel pivot counts let the gate catch a regression on one
    triangular kernel that a corpus-wide sum would wash out).
    """
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.solver_context import SolverContext
    from repro.scheduler.strategies import pluto_style
    from repro.suites.polybench import build_kernel

    rows: dict[str, dict] = {}
    node_keys: dict[str, list] = {}
    totals: dict[str, float] = {}
    per_kernel: dict[str, dict] = {}
    recorded: list = []
    original_solve = SolverContext.solve

    def recording_solve(self, problem):
        solution = original_solve(self, problem)
        if solution is not None:
            recorded.append(solution.node_key)
        return solution

    started = time.perf_counter()
    SolverContext.solve = recording_solve
    try:
        for kernel in kernels:
            recorded.clear()
            config = pluto_style()
            config.solver_options = options
            scheduler = PolyTOPSScheduler(build_kernel(kernel), config)
            result = scheduler.schedule()
            rows[kernel] = {
                name: [str(row) for row in statement.rows]
                for name, statement in result.schedule.statements.items()
            }
            node_keys[kernel] = list(recorded)
            stats = {
                key: value
                for key, value in scheduler.solver_context.statistics().items()
                if isinstance(value, (int, float))
            }
            per_kernel[kernel] = stats
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
    finally:
        SolverContext.solve = original_solve
    return rows, node_keys, totals, per_kernel, time.perf_counter() - started


def run_dim_warm(quick: bool = False) -> dict:
    """Schedule the PolyBench corpus with cross-dimension warm starts on vs off.

    The warm leg runs the defaults (``warm_start`` + the LP ``irredundancy``
    pass), the cold leg turns both off, and a third leg keeps warm starts but
    disables the prober so the pruning pass can be priced on its own.
    Bit-identity is the contract: schedule rows *and* the branch & bound
    ``node_key`` witnesses must match between warm and cold legs — the
    factored basis carried from dimension *k* to *k+1* (and every row the
    prober drops) may only change how many pivots the solver spends getting
    to the same answer.  The counters (``dim_warm_starts``,
    ``warm_pivots_saved``, ``irredundant_rows_dropped``, ``warm_skips``, the
    ``irredundancy_*`` prober counters) are exact for a fixed corpus, so
    ``perf_gate.py`` gates them with zero tolerance: any decrease means the
    warm path (or the prober) silently stopped firing.

    Wall times are the min over ``passes`` runs of each leg (the ``timeit``
    convention).  The prober's verdict store is process-shared, so the warm
    leg's first pass pays every probe and later passes answer replayed block
    signatures by lookup — the steady state of a long-lived compilation
    service.  Both numbers are reported: ``warm_first_pass_seconds`` is the
    store-cold price, ``warm_seconds`` the steady state.  Counters are taken
    from the first pass, where they are exact.
    """
    from repro.polyhedra.emptiness import RedundancyProber

    kernels = (
        ("gemm", "jacobi-2d")
        if quick
        else ("gemm", "gemver", "jacobi-2d", "cholesky")
    )
    passes = 3
    warm_options = SolverOptions.resolve(warm_start=True, irredundancy=True)
    noprune_options = SolverOptions.resolve(warm_start=True, irredundancy=False)
    cold_options = SolverOptions.resolve(warm_start=False, irredundancy=False)

    RedundancyProber.clear_shared_store()
    warm_rows, warm_keys, warm_stats, warm_per_kernel, first_pass = _schedule_leg(
        kernels, warm_options
    )
    warm_seconds = first_pass
    for _ in range(passes - 1):
        warm_seconds = min(warm_seconds, _schedule_leg(kernels, warm_options)[4])

    cold_rows, cold_keys, cold_stats, cold_per_kernel, cold_seconds = _schedule_leg(
        kernels, cold_options
    )
    for _ in range(passes - 1):
        cold_seconds = min(cold_seconds, _schedule_leg(kernels, cold_options)[4])

    noprune_seconds = min(
        _schedule_leg(kernels, noprune_options)[4] for _ in range(passes)
    )

    mismatches = sum(
        1
        for kernel in kernels
        if warm_rows[kernel] != cold_rows[kernel]
        or warm_keys[kernel] != cold_keys[kernel]
    )
    return {
        "quick": quick,
        "kernels": list(kernels),
        "warm_seconds": warm_seconds,
        "warm_first_pass_seconds": first_pass,
        "cold_seconds": cold_seconds,
        "irredundancy_off_seconds": noprune_seconds,
        "warm_pivots": warm_stats.get("pivots", 0),
        "cold_pivots": cold_stats.get("pivots", 0),
        "warm_pivots_by_kernel": {
            kernel: warm_per_kernel[kernel].get("pivots", 0) for kernel in kernels
        },
        "cold_pivots_by_kernel": {
            kernel: cold_per_kernel[kernel].get("pivots", 0) for kernel in kernels
        },
        "dim_warm_starts": warm_stats.get("dim_warm_starts", 0),
        "warm_pivots_saved": warm_stats.get("warm_pivots_saved", 0),
        "warm_aborts": warm_stats.get("warm_aborts", 0),
        "warm_skips": warm_stats.get("warm_skips", 0),
        "irredundancy_probes": warm_stats.get("irredundancy_probes", 0),
        "irredundancy_contexts": warm_stats.get("irredundancy_contexts", 0),
        "irredundancy_warm_probes": warm_stats.get("irredundancy_warm_probes", 0),
        "irredundancy_pivots": warm_stats.get("irredundancy_pivots", 0),
        "irredundant_rows_dropped": warm_stats.get("irredundant_rows_dropped", 0),
        "mismatches": mismatches,
    }


def run_trace_check(quick: bool = False, trace_output: str | None = None) -> dict:
    """Schedule a golden kernel under the span tracer and cross-check counters.

    The contract the observability layer ships with: the ``ilp.solve`` span
    deltas must sum to exactly the :class:`EngineStatistics` totals of the
    run, and the ``scheduler.run`` span must carry the scheduler's
    statistics dict verbatim.  Any divergence means a counter is attached
    from the wrong snapshot window — ``perf_gate.py`` fails the job on it.
    ``trace_output`` additionally writes the Chrome-trace JSON (the CI
    artifact to drop into Perfetto).
    """
    from repro.obs import Tracer, write_chrome_trace
    from repro.pipeline.session import Session
    from repro.suites.polybench import build_kernel

    kernels = ("gemm",) if quick else ("gemm", "jacobi-2d")
    checks: dict[str, dict] = {}
    divergences = 0
    tracer = Tracer()
    session = Session(tracer=tracer)
    for kernel in kernels:
        tracer.clear()
        result = session.compile(build_kernel(kernel))
        statistics = result.solver_statistics
        solves = [r for r in tracer.records if r.name == "ilp.solve"]
        run_span = next(r for r in tracer.records if r.name == "scheduler.run")
        span_statistics = {
            key: value for key, value in run_span.counters.items() if key != "kernel"
        }
        span_pivots = sum(r.counters.get("pivots", 0) for r in solves)
        span_nodes = sum(r.counters.get("nodes", 0) for r in solves)
        matches = (
            len(solves) == statistics.get("solve_calls")
            and span_pivots == statistics.get("pivots")
            and span_nodes == statistics.get("nodes")
            and span_statistics == statistics
        )
        if not matches:
            divergences += 1
        checks[kernel] = {
            "ilp_spans": len(solves),
            "solve_calls": statistics.get("solve_calls"),
            "span_pivots": span_pivots,
            "engine_pivots": statistics.get("pivots"),
            "span_nodes": span_nodes,
            "engine_nodes": statistics.get("nodes"),
            "counters_match": matches,
        }
        if trace_output and kernel == kernels[-1]:
            write_chrome_trace(tracer, trace_output)
    return {
        "quick": quick,
        "kernels": list(kernels),
        "checks": checks,
        "divergences": divergences,
        "trace_output": trace_output,
    }


def run_trace_overhead(quick: bool = False, passes: int = 5) -> dict:
    """Price the *disabled* tracing path on the quick solver corpus.

    Compares ``SolverContext.solve`` (which starts with the
    ``tracer.enabled`` guard every production solve now pays) against the
    guard-free ``_solve`` body over identical fresh contexts.  The min over
    *passes* follows the ``timeit`` convention; ``perf_gate.py`` fails the
    job when the disabled-path overhead exceeds 2%.
    """
    from repro.scheduler.solver_context import SolverContext

    problems = synthetic_problems(12 if quick else 40)

    def time_leg(direct: bool) -> float:
        context = SolverContext()
        solve = context._solve if direct else context.solve
        started = time.perf_counter()
        for problem in problems:
            solve(problem)
        elapsed = time.perf_counter() - started
        context.close()
        return elapsed

    # The legs are interleaved (and their order alternated per pass) so slow
    # drift — thermal scaling, interpreter warm-up, GC pressure — cancels
    # instead of landing entirely on whichever leg runs later.
    direct_seconds = disabled_seconds = None
    for index in range(passes):
        order = (True, False) if index % 2 == 0 else (False, True)
        for direct in order:
            elapsed = time_leg(direct)
            if direct:
                direct_seconds = (
                    elapsed if direct_seconds is None else min(direct_seconds, elapsed)
                )
            else:
                disabled_seconds = (
                    elapsed
                    if disabled_seconds is None
                    else min(disabled_seconds, elapsed)
                )
    overhead = (
        (disabled_seconds - direct_seconds) / direct_seconds if direct_seconds else 0.0
    )
    return {
        "problems": len(problems),
        "passes": passes,
        "direct_seconds": direct_seconds,
        "disabled_seconds": disabled_seconds,
        "overhead_fraction": overhead,
    }


# --------------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------------- #
def test_solver_benchmark(benchmark):
    problems = synthetic_problems(30) + scheduler_problems(quick=True)

    def solve_corpus():
        solver = IlpSolver(options=SolverOptions.resolve(engine="incremental"))
        return [solver.solve(problem) for problem in problems]

    engine_solutions = benchmark.pedantic(solve_corpus, iterations=1, rounds=3)
    oracle = IlpSolver(options=SolverOptions.resolve(engine="oracle"))
    for problem, solution in zip(problems, engine_solutions):
        expected = oracle.solve(problem)
        assert (solution is None) == (expected is None)
        if solution is not None and expected is not None:
            assert solution.objective_values == expected.objective_values


def test_engine_reuses_warm_starts():
    """Sanity: on a branching-heavy corpus the engine records warm starts."""
    problem = LinearProblem()
    for i in range(4):
        problem.add_variable(f"x{i}", 0, 7)
    problem.add_constraint({f"x{i}": 2 for i in range(4)}, "==", 7)
    problem.add_objective({f"x{i}": 1 for i in range(4)})
    engine = IncrementalIlpEngine(problem)
    assert engine.solve() is None  # odd rhs over even coefficients: infeasible
    assert engine.stats.warm_start_hits > 0


# --------------------------------------------------------------------------- #
# Standalone script mode (used by CI to emit BENCH_solver.json)
# --------------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small corpus (CI smoke)")
    parser.add_argument(
        "--output", default=None, help="write the timing JSON to this path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="also time the B&B-heavy corpus with N parallel workers vs 1",
    )
    parser.add_argument(
        "--processes",
        action="store_true",
        help="use forked process workers for --workers (default: threads)",
    )
    parser.add_argument(
        "--trace-output",
        default=None,
        metavar="PATH",
        help="write the trace-check golden kernel's Chrome-trace JSON here "
        "(the Perfetto CI artifact)",
    )
    arguments = parser.parse_args(argv)
    report = run(quick=arguments.quick)
    mismatches = report["mismatches"] + report["core_mismatches"]
    report["deepnest_benchmark"] = run_deepnest(quick=arguments.quick)
    mismatches += report["deepnest_benchmark"]["mismatches"]
    report["dim_warm_benchmark"] = run_dim_warm(quick=arguments.quick)
    mismatches += report["dim_warm_benchmark"]["mismatches"]
    report["trace_check"] = run_trace_check(
        quick=arguments.quick, trace_output=arguments.trace_output
    )
    mismatches += report["trace_check"]["divergences"]
    report["trace_overhead"] = run_trace_overhead(quick=arguments.quick)
    if arguments.workers:
        report["workers_benchmark"] = run_workers(
            arguments.workers, quick=arguments.quick, processes=arguments.processes
        )
        mismatches += report["workers_benchmark"]["mismatches"]
    text = json.dumps(report, indent=2, default=str)
    print(text)
    if arguments.output:
        Path(arguments.output).write_text(text + "\n")
    return 1 if mismatches else 0


if __name__ == "__main__":
    raise SystemExit(main())
