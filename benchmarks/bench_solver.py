"""Microbenchmark of the ILP solver stack: incremental engine vs. dense oracle.

Two usage modes:

* ``pytest benchmarks/bench_solver.py --benchmark-only`` — times the
  incremental engine on the problem corpus and differentially checks every
  answer against the retained dense oracle.
* ``PYTHONPATH=src python benchmarks/bench_solver.py [--quick] [--output
  BENCH_solver.json]`` — standalone script (no pytest plugins needed) that
  times both paths and writes a JSON artifact, giving CI a perf trajectory
  across PRs.

The corpus mixes synthetic scheduler-shaped MILPs (bounded integer variables,
mixed-sense rows, one or two lexicographic objectives) with the *real*
per-dimension problems of a few PolyBench kernels, captured by running the
PolyTOPS scheduler with an instrumented solver.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make `import repro` resolvable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ilp import IlpSolver, LinearProblem
from repro.ilp.engine import IncrementalIlpEngine


def synthetic_problems(count: int, seed: int = 20260730) -> list[LinearProblem]:
    """Random scheduler-shaped MILPs (bounded integers, mixed senses)."""
    rng = random.Random(seed)
    problems: list[LinearProblem] = []
    for _ in range(count):
        problem = LinearProblem()
        n = rng.randint(3, 8)
        names = [f"x{i}" for i in range(n)]
        for name in names:
            problem.add_variable(name, 0, rng.randint(2, 8))
        for _ in range(rng.randint(2, 2 * n)):
            coefficients = {
                name: rng.randint(-3, 3)
                for name in rng.sample(names, rng.randint(1, n))
            }
            coefficients = {k: v for k, v in coefficients.items() if v}
            if not coefficients:
                continue
            problem.add_constraint(
                coefficients, rng.choice([">=", "<=", "=="]), rng.randint(-4, 10)
            )
        for _ in range(rng.randint(1, 2)):
            objective = {name: rng.randint(-3, 3) for name in names}
            objective = {k: v for k, v in objective.items() if v}
            if objective:
                problem.add_objective(objective)
        problems.append(problem)
    return problems


def scheduler_problems(quick: bool) -> list[LinearProblem]:
    """The real per-dimension ILPs of a few PolyBench kernels."""
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.solver_context import SolverContext
    from repro.suites.polybench.blas import gemm, gemver
    from repro.suites.polybench.stencils import jacobi_2d

    scops = [gemm(8, 8, 8), jacobi_2d(8, 4)]
    if not quick:
        scops.append(gemver(10))

    captured: list[LinearProblem] = []
    original_solve = SolverContext.solve

    def capturing_solve(self, problem):
        captured.append(problem.copy())
        return original_solve(self, problem)

    SolverContext.solve = capturing_solve
    try:
        for scop in scops:
            PolyTOPSScheduler(scop).schedule()
    finally:
        SolverContext.solve = original_solve
    return captured


def _solve_all(
    problems: list[LinearProblem], engine: str
) -> tuple[float, list, IlpSolver]:
    solver = IlpSolver(engine=engine)
    solutions = []
    started = time.perf_counter()
    for problem in problems:
        solutions.append(solver.solve(problem))
    return time.perf_counter() - started, solutions, solver


def run(quick: bool = False) -> dict:
    """Time both solver paths over the corpus and differentially compare them."""
    problems = synthetic_problems(12 if quick else 60) + scheduler_problems(quick)
    engine_seconds, engine_solutions, engine_solver = _solve_all(
        problems, "incremental"
    )
    oracle_seconds, oracle_solutions, _ = _solve_all(problems, "oracle")

    mismatches = 0
    for a, b in zip(engine_solutions, oracle_solutions):
        if (a is None) != (b is None):
            mismatches += 1
        elif a is not None and a.objective_values != b.objective_values:
            mismatches += 1

    return {
        "problems": len(problems),
        "quick": quick,
        "engine_seconds": engine_seconds,
        "oracle_seconds": oracle_seconds,
        "speedup_vs_oracle": (oracle_seconds / engine_seconds)
        if engine_seconds
        else None,
        "mismatches": mismatches,
        "engine_statistics": engine_solver.statistics_summary(),
    }


# --------------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------------- #
def test_solver_benchmark(benchmark):
    problems = synthetic_problems(30) + scheduler_problems(quick=True)

    def solve_corpus():
        solver = IlpSolver(engine="incremental")
        return [solver.solve(problem) for problem in problems]

    engine_solutions = benchmark.pedantic(solve_corpus, iterations=1, rounds=3)
    oracle = IlpSolver(engine="oracle")
    for problem, solution in zip(problems, engine_solutions):
        expected = oracle.solve(problem)
        assert (solution is None) == (expected is None)
        if solution is not None and expected is not None:
            assert solution.objective_values == expected.objective_values


def test_engine_reuses_warm_starts():
    """Sanity: on a branching-heavy corpus the engine records warm starts."""
    problem = LinearProblem()
    for i in range(4):
        problem.add_variable(f"x{i}", 0, 7)
    problem.add_constraint({f"x{i}": 2 for i in range(4)}, "==", 7)
    problem.add_objective({f"x{i}": 1 for i in range(4)})
    engine = IncrementalIlpEngine(problem)
    assert engine.solve() is None  # odd rhs over even coefficients: infeasible
    assert engine.stats.warm_start_hits > 0


# --------------------------------------------------------------------------- #
# Standalone script mode (used by CI to emit BENCH_solver.json)
# --------------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small corpus (CI smoke)")
    parser.add_argument(
        "--output", default=None, help="write the timing JSON to this path"
    )
    arguments = parser.parse_args(argv)
    report = run(quick=arguments.quick)
    text = json.dumps(report, indent=2, default=str)
    print(text)
    if arguments.output:
        Path(arguments.output).write_text(text + "\n")
    return 1 if report["mismatches"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
