"""Full differential sweep: engine vs oracle, workers=1 vs workers=4.

Runs the complete fig. 2 PolyBench kernel list (25 kernels) under both
scheduling strategies the paper leans on (pluto-style and isl-style) and
four solver variants:

* dense oracle (the reference),
* incremental engine, sequential,
* incremental engine, 4 thread workers,
* incremental engine, 4 process workers (opt-in fork mode).

Every variant must produce the *same schedule rows* for every statement —
the engine is differentially validated against the oracle, and the parallel
layer against the sequential engine.  The report (JSON) records per-case
timings, solver statistics and any mismatches; the exit code is non-zero
when a mismatch occurred, so the nightly CI job fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/differential_sweep.py \
        [--output sweep_report.json] [--kernels gemm,atax] [--workers 4]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # script mode: make `import repro` resolvable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scheduler.core import PolyTOPSScheduler
from repro.scheduler.strategies import isl_style, pluto_style
from repro.suites.polybench import FIG2_KERNELS, build_kernel


def _schedule_rows(result) -> dict[str, tuple]:
    return {
        name: tuple(statement.rows)
        for name, statement in result.schedule.statements.items()
    }


def _run_variant(scop, config, engine: str, workers: int, processes: bool):
    """One scheduling run under a forced solver variant."""
    saved = os.environ.get("REPRO_ILP_ENGINE")
    os.environ["REPRO_ILP_ENGINE"] = engine
    try:
        variant_config = dataclasses.replace(
            config, solver_workers=workers, solver_processes=processes
        )
        started = time.perf_counter()
        result = PolyTOPSScheduler(scop, variant_config).schedule()
        seconds = time.perf_counter() - started
    finally:
        if saved is None:
            os.environ.pop("REPRO_ILP_ENGINE", None)
        else:
            os.environ["REPRO_ILP_ENGINE"] = saved
    return result, seconds


def sweep(kernels: list[str], workers: int) -> dict:
    variants = (
        ("oracle", "oracle", 1, False),
        ("engine-w1", "incremental", 1, False),
        (f"engine-w{workers}-threads", "incremental", workers, False),
        (f"engine-w{workers}-processes", "incremental", workers, True),
    )
    cases = []
    mismatches = 0
    for kernel in kernels:
        scop = build_kernel(kernel)
        for config in (pluto_style(), isl_style()):
            case: dict = {"kernel": kernel, "config": config.name, "variants": {}}
            reference_rows = None
            for label, engine, variant_workers, processes in variants:
                result, seconds = _run_variant(
                    scop, config, engine, variant_workers, processes
                )
                rows = _schedule_rows(result)
                if reference_rows is None:
                    reference_rows = rows
                    identical = True
                else:
                    identical = rows == reference_rows
                if not identical:
                    mismatches += 1
                statistics = result.statistics
                case["variants"][label] = {
                    "seconds": seconds,
                    "identical_to_oracle": identical,
                    "fallback_to_original": result.fallback_to_original,
                    "ilp_solved": statistics.get("ilp_solved"),
                    "nodes": statistics.get("nodes"),
                    "engine_fallbacks": statistics.get("engine_fallbacks"),
                    "parallel_stages": statistics.get("parallel_stages"),
                }
            cases.append(case)
            status = "ok" if all(
                v["identical_to_oracle"] for v in case["variants"].values()
            ) else "MISMATCH"
            print(f"{kernel:>16} / {config.name:<24} {status}", flush=True)
    return {
        "kernels": kernels,
        "workers": workers,
        "cases": cases,
        "mismatches": mismatches,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output", default=None, help="write the JSON report to this path"
    )
    parser.add_argument(
        "--kernels",
        default=None,
        help="comma-separated kernel subset (default: all 25 fig2 kernels)",
    )
    parser.add_argument("--workers", type=int, default=4)
    arguments = parser.parse_args(argv)
    kernels = (
        arguments.kernels.split(",") if arguments.kernels else list(FIG2_KERNELS)
    )
    report = sweep(kernels, arguments.workers)
    print(
        f"\n{len(report['cases'])} cases, {report['mismatches']} mismatches"
    )
    if arguments.output:
        Path(arguments.output).write_text(json.dumps(report, indent=2) + "\n")
    return 1 if report["mismatches"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
