"""Validation of the workload suites and quick runs of the experiment harnesses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import run_original
from repro.deps import compute_dependences
from repro.experiments import ExperimentHarness, format_table, geometric_mean, write_csv
from repro.experiments.kernel_configs import kernel_specific_candidates
from repro.machine import intel_xeon_e5_2683
from repro.scheduler import PlutoBaseline, baseline_by_name, pluto_style
from repro.suites import (
    TABLE1_CASES,
    build_case,
    build_pipeline,
    lu_decomp,
    trsm_l_off_diag,
)
from repro.suites.polybench import FIG2_KERNELS, KERNELS, build_kernel, kernel_names


class TestPolybenchSuite:
    def test_registry_covers_fig2(self):
        assert set(FIG2_KERNELS) <= set(kernel_names())

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_builds_and_executes(self, name):
        scop = build_kernel(name)
        assert scop.n_statements >= 1
        assert scop.parameters
        arrays = scop.allocate_arrays()
        stats = run_original(scop, arrays)
        assert stats.instances > 0

    @pytest.mark.parametrize("name", ["gemm", "atax", "trisolv", "jacobi-1d", "mvt"])
    def test_kernel_has_dependences(self, name):
        scop = build_kernel(name)
        assert compute_dependences(scop)

    def test_size_scaling(self):
        small = build_kernel("gemm", size_scale=0.5)
        large = build_kernel("gemm", size_scale=2.0)
        assert large.parameter_values["NI"] > small.parameter_values["NI"]

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            build_kernel("not-a-kernel")


class TestCustomOperators:
    def test_table1_case_list_matches_paper(self):
        assert len(TABLE1_CASES) == 15  # 1 LU + 7 trsmL + 7 trsmU
        operators = {case[0] for case in TABLE1_CASES}
        assert operators == {"lu_decomp", "trsmL_off_diag", "trsmU_transpose"}

    def test_lu_decomp_structure(self):
        scop = lu_decomp(8)
        assert scop.n_statements == 2
        assert compute_dependences(scop)

    def test_trsm_vector_iterator_is_contiguous(self):
        scop = trsm_l_off_diag(rows=8, blocks=1, lanes=8)
        for statement in scop.statements:
            assert statement.preferred_vector_iterator() == "k"

    def test_build_case_unknown(self):
        with pytest.raises(KeyError):
            build_case("unknown-op")


class TestPolymageSuite:
    @pytest.mark.parametrize(
        "name", ["harris", "unsharp-mask", "camera-pipe", "interpolate", "pyramid-blending"]
    )
    def test_pipeline_builds_and_executes(self, name):
        scop = build_pipeline(name, rows=8, cols=8)
        arrays = scop.allocate_arrays()
        stats = run_original(scop, arrays)
        assert stats.instances > 0

    def test_pipelines_have_producer_consumer_dependences(self):
        scop = build_pipeline("unsharp-mask", rows=8, cols=8)
        deps = compute_dependences(scop)
        assert any(d.source != d.target for d in deps)


class TestHarnessAndReporting:
    def test_evaluation_and_cache(self):
        harness = ExperimentHarness(intel_xeon_e5_2683())
        scop = build_kernel("atax")
        first = harness.evaluate(scop, pluto_style())
        second = harness.evaluate(scop, pluto_style())
        assert first is second  # memoised
        assert first.cycles > 0

    def test_evaluate_best_picks_minimum(self):
        harness = ExperimentHarness(intel_xeon_e5_2683())
        scop = build_kernel("atax")
        best = harness.evaluate_best(scop, kernel_specific_candidates("atax")[:3], label="best")
        for config in kernel_specific_candidates("atax")[:3]:
            assert best.cycles <= harness.evaluate(scop, config).cycles

    def test_baseline_by_name(self):
        assert baseline_by_name("pluto").name == "pluto"
        assert len(baseline_by_name("pluto-lp-dfp").configs()) == 3
        with pytest.raises(KeyError):
            baseline_by_name("unknown")

    def test_evaluate_baseline(self):
        harness = ExperimentHarness(intel_xeon_e5_2683())
        scop = build_kernel("mvt")
        evaluation = harness.evaluate_baseline(scop, PlutoBaseline())
        assert evaluation.configuration == "pluto"

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0

    def test_format_table_and_csv(self, tmp_path):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
        assert "a" in text and "2.500" in text
        path = write_csv(tmp_path / "out.csv", ["a"], [[1], [2]])
        assert path.exists()
        assert path.read_text().startswith("a")


class TestExperimentsQuick:
    """Tiny experiment runs: the full versions live in benchmarks/."""

    def test_table1_single_case(self):
        from repro.experiments.table1 import run_table1

        rows = run_table1(cases=[("lu_decomp", "8x8", {"n": 8})])
        assert len(rows) == 1
        assert rows[0].isl_cycles > 0 and rows[0].polytops_cycles > 0

    def test_fig2_single_kernel(self):
        from repro.experiments.fig2 import run_fig2

        rows = run_fig2("Intel2", ("atax",))
        assert rows[0].kernel == "atax"
        assert set(rows[0].speedups) == {
            "pluto-style",
            "tensor-scheduler-style",
            "isl-style",
            "kernel-spec",
        }
        # The kernel-specific configuration is at least as good as the generic ones.
        assert rows[0].speedups["kernel-spec"] >= max(
            rows[0].speedups["pluto-style"] - 1e-9,
            rows[0].speedups["tensor-scheduler-style"] - 1e-9,
        )

    def test_fig3_two_sizes(self):
        from repro.experiments.fig3 import run_fig3

        points = run_fig3("Intel2", sizes=(("large", 1.0), ("4xlarge", 4.0)), base_tsteps=6, base_n=20)
        assert len(points) == 2
        assert all(p.pluto_cycles > 0 for p in points)

    def test_table2_single_pipeline(self):
        from repro.experiments.table2 import run_table2

        rows = run_table2("Intel2", ("unsharp-mask",))
        assert rows[0].timings_ms["polytops"] is not None

    def test_table2_unsupported_entries_are_na(self):
        from repro.experiments.table2 import UNSUPPORTED

        assert "pyramid-blending" in UNSUPPORTED["isl-ppcg"]
        assert "camera-pipe" in UNSUPPORTED["pluto"]
