"""Property-based differential suite for the bounded-variable simplex.

Three independent implementations answer every generated problem:

* the incremental engine (bounded-variable simplex, implicit boxes,
  branching by bound tightening),
* the retained dense oracle (explicit bound rows, cold two-phase simplex),
* a brute-force lexicographic enumerator over the integer box (only on
  fully-boxed instances, where enumeration is finite).

Hypothesis generates the instances — seeded and shrinkable, so a failure
replays deterministically and minimises itself — with the box shapes the
bounded simplex special-cases: degenerate boxes (``lower == upper``),
negative lower bounds, fractional bounds on integer variables (normalised
to the integral hull, possibly empty), unbounded-above and free variables.

Run with ``HYPOTHESIS_PROFILE=nightly`` for the deep sweep CI schedules
alongside the fig2 differential run; the default profile is derandomised
and small enough for tier-1.
"""

from __future__ import annotations

import itertools
import os
from fractions import Fraction

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.ilp import IlpSolver, LinearProblem
from repro.ilp.engine import EngineStatistics, IncrementalIlpEngine

settings.register_profile(
    "default",
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=1500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
def _fractions(min_value: int, max_value: int) -> st.SearchStrategy[Fraction]:
    return st.builds(
        Fraction,
        st.integers(min_value=2 * min_value, max_value=2 * max_value),
        st.sampled_from([1, 1, 2]),  # mostly integral, sometimes halves
    )


@st.composite
def boxed_problems(draw) -> LinearProblem:
    """Fully-boxed all-integer ILPs (small enough to brute-force)."""
    n = draw(st.integers(min_value=1, max_value=3))
    problem = LinearProblem()
    for index in range(n):
        lower = draw(_fractions(-3, 2))
        # Degenerate boxes (lower == upper) and empty integral hulls (a
        # fractional box with no integer inside) are deliberately likely.
        width = draw(st.sampled_from([0, 0, 1, 2, 3, Fraction(1, 2)]))
        problem.add_variable(f"x{index}", lower, lower + width)
    names = list(problem.variables)
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        coefficients = {
            name: draw(st.integers(min_value=-3, max_value=3)) for name in names
        }
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        problem.add_constraint(
            coefficients,
            draw(st.sampled_from([">=", "<=", "=="])),
            draw(_fractions(-4, 5)),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        objective = {
            name: draw(st.integers(min_value=-2, max_value=2)) for name in names
        }
        objective = {k: v for k, v in objective.items() if v}
        if objective:
            problem.add_objective(objective)
    return problem


@st.composite
def open_problems(draw) -> LinearProblem:
    """Problems with unbounded-above / free columns (engine vs oracle only)."""
    n = draw(st.integers(min_value=1, max_value=3))
    problem = LinearProblem()
    for index in range(n):
        kind = draw(st.sampled_from(["boxed", "boxed", "open", "free"]))
        if kind == "boxed":
            lower = draw(st.integers(min_value=-2, max_value=1))
            problem.add_variable(f"x{index}", lower, lower + draw(st.integers(0, 4)))
        elif kind == "open":
            problem.add_variable(f"x{index}", draw(st.integers(-2, 1)), None)
        else:
            problem.add_variable(f"x{index}", None, draw(st.integers(0, 4)))
    names = list(problem.variables)
    for _ in range(draw(st.integers(min_value=1, max_value=4))):
        coefficients = {
            name: draw(st.integers(min_value=-3, max_value=3)) for name in names
        }
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        problem.add_constraint(
            coefficients,
            draw(st.sampled_from([">=", "<=", "=="])),
            draw(st.integers(min_value=-4, max_value=6)),
        )
    if draw(st.booleans()):
        objective = {
            name: draw(st.integers(min_value=0, max_value=2)) for name in names
        }
        objective = {k: v for k, v in objective.items() if v}
        if objective:
            problem.add_objective(objective)
    return problem


# --------------------------------------------------------------------------- #
# Reference implementations
# --------------------------------------------------------------------------- #
def brute_force(problem: LinearProblem):
    """Lexicographic minimum by enumerating the (finite) integer box.

    Returns the tuple of optimal objective values, ``()`` for a feasible
    pure-feasibility problem, or ``None`` when no integer point fits.
    """
    ranges = []
    for variable in problem.variables.values():
        assert variable.lower is not None and variable.upper is not None
        low = -((-variable.lower.numerator) // variable.lower.denominator)  # ceil
        high = variable.upper.numerator // variable.upper.denominator  # floor
        if low > high:
            return None
        ranges.append([Fraction(value) for value in range(low, high + 1)])
    names = list(problem.variables)
    best: tuple[Fraction, ...] | None = None
    for point in itertools.product(*ranges):
        assignment = dict(zip(names, point))
        if not all(c.evaluate(assignment) for c in problem.constraints):
            continue
        key = tuple(
            sum(
                (coeff * assignment.get(name, Fraction(0)) for name, coeff in objective.items()),
                Fraction(0),
            )
            for objective in problem.objectives
        )
        if best is None or key < best:
            best = key
    return best


def _solve(problem: LinearProblem, engine: str, core: str | None = None):
    # Open (unbounded-column) instances can be LP-feasible but integer-
    # infeasible along an unbounded direction — e.g. ``2*x1 + 2*x2 == 1``
    # with both columns open — where branch & bound never terminates and
    # the fraction-free integers blow up.  A small node limit keeps every
    # generated instance cheap; limit hits are reported as an outcome so
    # the caller can discard the example symmetrically.
    solver = IlpSolver(engine=engine, node_limit=400, core=core)
    try:
        solution = solver.solve(problem)
    except ValueError as error:
        assert "unbounded" in str(error)
        return "unbounded", solver
    except RuntimeError as error:
        assert "node limit" in str(error)
        return "limit", solver
    return solution, solver


# --------------------------------------------------------------------------- #
# Differential properties
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("core", ["revised", "tableau"])
class TestBoxedDifferential:
    @given(problem=boxed_problems())
    def test_engine_oracle_and_brute_force_agree(
        self, core: str, problem: LinearProblem
    ):
        expected = brute_force(problem)
        incremental = IlpSolver(engine="incremental", core=core)
        engine_solution = incremental.solve(problem)
        oracle_solution = IlpSolver(engine="oracle").solve(problem)

        # The engine must stand on its own: no silent oracle fallback.
        assert incremental.engine_fallbacks == 0
        if expected is None:
            assert engine_solution is None
            assert oracle_solution is None
            return
        assert engine_solution is not None and oracle_solution is not None
        assert tuple(engine_solution.objective_values) == expected
        assert tuple(oracle_solution.objective_values) == expected
        assert problem.is_feasible_assignment(engine_solution.assignment)
        assert problem.is_feasible_assignment(oracle_solution.assignment)

    @given(problem=boxed_problems())
    def test_engine_incumbents_lie_in_every_box(
        self, core: str, problem: LinearProblem
    ):
        solution = IlpSolver(engine="incremental", core=core).solve(problem)
        if solution is None:
            return
        for name, variable in problem.variables.items():
            value = solution.assignment.get(name, Fraction(0))
            assert variable.lower <= value <= variable.upper
            assert value.denominator == 1


@pytest.mark.parametrize("core", ["revised", "tableau"])
class TestOpenDifferential:
    @given(problem=open_problems())
    def test_engine_matches_oracle_with_open_columns(
        self, core: str, problem: LinearProblem
    ):
        engine_solution, incremental = _solve(problem, "incremental", core)
        oracle_solution, _ = _solve(problem, "oracle")
        assert incremental.engine_fallbacks == 0
        # A node-limit hit (either path) means the instance diverged along
        # an unbounded integer direction: nothing to compare — discard.
        assume(engine_solution != "limit" and oracle_solution != "limit")
        if engine_solution == "unbounded" or oracle_solution == "unbounded":
            assert engine_solution == oracle_solution
            return
        assert (engine_solution is None) == (oracle_solution is None)
        if engine_solution is not None:
            assert (
                engine_solution.objective_values == oracle_solution.objective_values
            )
            assert problem.is_feasible_assignment(engine_solution.assignment)


# --------------------------------------------------------------------------- #
# Directed regressions for the bound machinery
# --------------------------------------------------------------------------- #
class TestBoundedSimplexUnits:
    def test_entering_variable_stops_at_its_own_span(self):
        # Regression: the ratio test once compared the entering column's span
        # against den-scaled row ratios without scaling it, letting a basic
        # variable overshoot its box (x0 = 9 > 7 here) and producing an
        # "infeasible incumbent" engine error.
        problem = LinearProblem()
        problem.add_variable("x0", 0, 7)
        problem.add_variable("x1", 0, 2)
        problem.add_variable("x2", -3, 6)
        problem.add_variable("x3", 0, 5)
        problem.add_constraint({"x1": -3, "x3": 2}, "<=", 0)
        problem.add_constraint({"x1": 1, "x2": 3}, "==", 0)
        problem.add_constraint({"x0": 1, "x1": 1, "x2": 3}, ">=", 9)
        # The equality pins x1 = x2 = 0 inside their boxes, so x0 >= 9 can
        # never fit in [0, 7]: the engine must reach INFEASIBLE on its own
        # (the regression surfaced as an EngineError -> oracle fallback).
        incremental = IlpSolver(engine="incremental")
        solution = incremental.solve(problem)
        assert incremental.engine_fallbacks == 0
        assert solution is None
        assert IlpSolver(engine="oracle").solve(problem) is None

    def test_upper_bounds_do_not_materialise_rows(self):
        problem = LinearProblem()
        for index in range(4):
            problem.add_variable(f"x{index}", 0, 5)
        problem.add_constraint({f"x{index}": 1 for index in range(4)}, ">=", 6)
        problem.add_objective({f"x{index}": 1 for index in range(4)})
        stats = EngineStatistics()
        engine = IncrementalIlpEngine(problem, stats=stats)
        assert engine.solve() is not None
        # One constraint row only: the four boxes live in column spans.
        assert stats.tableau_rows == 1
        assert stats.rows_saved >= 4
        assert len(engine._base_rows) == 1

    def test_bound_flip_is_recorded_and_correct(self):
        # Maximising a variable that nothing blocks before its own upper
        # bound is exactly the no-pivot bound-flip step.
        problem = LinearProblem()
        problem.add_variable("x", 0, 9)
        problem.add_variable("y", 0, 9)
        problem.add_constraint({"x": 1, "y": 1}, "<=", 100)
        problem.add_objective({"x": -1})
        stats = EngineStatistics()
        solution = IncrementalIlpEngine(problem, stats=stats).solve()
        assert solution is not None
        assert solution.value("x") == 9
        assert stats.bound_flips >= 1

    def test_fixed_variable_participates_without_rows(self):
        problem = LinearProblem()
        problem.add_variable("x", 3, 3)  # degenerate box
        problem.add_variable("y", 0, 10)
        problem.add_constraint({"x": 1, "y": 1}, ">=", 7)
        problem.add_objective({"y": 1})
        stats = EngineStatistics()
        solution = IncrementalIlpEngine(problem, stats=stats).solve()
        assert solution is not None
        assert solution.value("x") == 3
        assert solution.value("y") == 4
        assert stats.tableau_rows == 1

    def test_empty_integral_hull_is_infeasible(self):
        problem = LinearProblem()
        problem.add_variable("x", Fraction(1, 3), Fraction(2, 3))
        assert IlpSolver(engine="incremental").solve(problem) is None
        assert IlpSolver(engine="oracle").solve(problem) is None

    def test_branching_tightens_bounds_instead_of_adding_rows(self):
        problem = LinearProblem()
        for index in range(4):
            problem.add_variable(f"x{index}", 0, 7)
        problem.add_constraint({f"x{index}": 2 for index in range(4)}, "==", 7)
        stats = EngineStatistics()
        assert IncrementalIlpEngine(problem, stats=stats).solve() is None
        # Every explored child applied its branching cut as a tightening
        # (4 implicit boxes + one tightening per cut node).
        assert stats.rows_saved > 4
        assert stats.warm_start_hits > 0


# --------------------------------------------------------------------------- #
# Bound validation / normalisation (the single normalisation point)
# --------------------------------------------------------------------------- #
class TestBoundNormalisation:
    def test_reversed_bounds_rejected(self):
        problem = LinearProblem()
        with pytest.raises(ValueError, match="lower bound exceeds upper"):
            problem.add_variable("x", 3, 1)

    def test_non_rational_bounds_rejected(self):
        problem = LinearProblem()
        with pytest.raises(ValueError, match="not a rational number"):
            problem.add_variable("x", float("nan"), 1)
        with pytest.raises(ValueError, match="not a rational number"):
            problem.add_variable("y", 0, float("inf"))
        with pytest.raises(ValueError, match="not a rational number"):
            problem.add_variable("z", "zero", 1)

    def test_integer_bounds_tighten_to_integral_hull(self):
        from repro.ilp.problem import Variable

        variable = Variable("x", Fraction(-5, 2), Fraction(7, 2))
        assert variable.normalized_bounds() == (Fraction(-2), Fraction(3))
        assert not variable.is_fixed

    def test_continuous_bounds_untouched(self):
        from repro.ilp.problem import Variable

        variable = Variable("x", Fraction(-5, 2), Fraction(7, 2), is_integer=False)
        assert variable.normalized_bounds() == (Fraction(-5, 2), Fraction(7, 2))

    def test_fixed_variable_detected(self):
        from repro.ilp.problem import Variable

        assert Variable("x", 2, 2).is_fixed
        assert not Variable("x", 2, 3).is_fixed
        assert not Variable("x", None, 3).is_fixed

    def test_normalisation_shared_by_both_encoders(self):
        # The oracle's standard-form encoder and the engine consume the same
        # normalised box, so fractional integer bounds cannot diverge.
        from repro.ilp.branch_bound import _StandardFormEncoder

        problem = LinearProblem()
        problem.add_variable("x", Fraction(-5, 2), Fraction(7, 2))
        encoder = _StandardFormEncoder(problem)
        assert encoder.box_of["x"] == (Fraction(-2), Fraction(3))
        assert encoder.shift_of["x"] == Fraction(-2)
        engine = IncrementalIlpEngine(problem)
        assert engine._column_spans[encoder.column_of["x"]] == 5

    def test_negative_lower_bound_gets_an_implicit_box(self):
        problem = LinearProblem()
        problem.add_variable("x", -4, 4)
        problem.add_constraint({"x": 1}, "<=", 10)
        stats = EngineStatistics()
        engine = IncrementalIlpEngine(problem, stats=stats)
        assert engine.solve() is not None
        assert stats.rows_saved >= 1
        assert stats.tableau_rows == 1  # just the constraint; no bound rows
