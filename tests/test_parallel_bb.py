"""Determinism and cancellation tests for the parallel branch & bound layer.

The contract of :mod:`repro.ilp.parallel`: solving with any number of
workers — threads or processes — returns *bit-identical* solutions to the
sequential engine (same objective values, same chosen assignment, same
winning branch path), because the shared :class:`IncumbentStore` tie-break
(lexicographically smallest branch path on equal values) is exactly the
sequential first-found rule.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.ilp import IlpSolver, IncumbentStore, LinearProblem, WorkerPool
from repro.ilp.engine import IncrementalIlpEngine, _BranchNode


def _random_problem(rng: random.Random) -> LinearProblem:
    """Scheduler-shaped random MILP (bounded integers, mixed senses)."""
    problem = LinearProblem()
    n = rng.randint(2, 6)
    names = [f"x{i}" for i in range(n)]
    for name in names:
        problem.add_variable(name, 0, rng.randint(2, 8))
    for _ in range(rng.randint(1, 7)):
        coefficients = {
            name: rng.randint(-3, 3) for name in rng.sample(names, rng.randint(1, n))
        }
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        problem.add_constraint(
            coefficients, rng.choice([">=", "<=", "=="]), rng.randint(-5, 9)
        )
    for _ in range(rng.randint(0, 2)):
        objective = {name: rng.randint(-3, 3) for name in names}
        objective = {k: v for k, v in objective.items() if v}
        if objective:
            problem.add_objective(objective)
    return problem


def _branching_heavy() -> LinearProblem:
    """A small knapsack-style MILP whose B&B tree clears the warm-up."""
    problem = LinearProblem()
    coefficients = [2, 3, 5, 7, 11]
    for index, coefficient in enumerate(coefficients):
        problem.add_variable(f"x{index}", 0, 3)
    problem.add_constraint(
        {f"x{index}": value for index, value in enumerate(coefficients)}, "==", 23
    )
    problem.add_objective({f"x{index}": 1 for index in range(len(coefficients))})
    return problem


# --------------------------------------------------------------------------- #
# IncumbentStore semantics (the determinism argument, order-free)
# --------------------------------------------------------------------------- #
class TestIncumbentStore:
    def test_strictly_better_value_wins(self):
        store = IncumbentStore()
        assert store.offer(Fraction(5), (1,), {"x": Fraction(1)})
        assert store.offer(Fraction(3), (1, 1), {"x": Fraction(2)})
        assert store.best()[0] == Fraction(3)

    def test_equal_value_smaller_path_wins_regardless_of_arrival_order(self):
        first = IncumbentStore()
        first.offer(Fraction(3), (0, 1), {"x": Fraction(1)})
        first.offer(Fraction(3), (1, 0), {"x": Fraction(2)})
        second = IncumbentStore()
        second.offer(Fraction(3), (1, 0), {"x": Fraction(2)})
        second.offer(Fraction(3), (0, 1), {"x": Fraction(1)})
        assert first.best() == second.best()
        assert first.path == (0, 1)

    def test_prune_is_strict_on_ties(self):
        store = IncumbentStore()
        store.offer(Fraction(3), (1, 0), None)
        # An equal bound with a smaller path may still hide the tie-break
        # winner: must NOT be pruned.
        assert not store.should_prune(Fraction(3), (0,))
        assert store.should_prune(Fraction(3), (1, 1))
        assert store.should_prune(Fraction(4), (0,))

    def test_no_incumbent_never_prunes(self):
        store = IncumbentStore()
        assert not store.should_prune(Fraction(-100), (1, 1, 1))


# --------------------------------------------------------------------------- #
# Randomised determinism across worker counts
# --------------------------------------------------------------------------- #
class TestWorkerDeterminism:
    def test_workers_1_2_8_return_identical_solutions(self):
        rng = random.Random(20260730)
        solvers = {workers: IlpSolver(workers=workers) for workers in (1, 2, 8)}
        try:
            for _ in range(60):
                problem = _random_problem(rng)
                solutions = {
                    workers: solver.solve(problem)
                    for workers, solver in solvers.items()
                }
                base = solutions[1]
                for workers, solution in solutions.items():
                    assert (solution is None) == (base is None), workers
                    if solution is None or base is None:
                        continue
                    assert solution.objective_values == base.objective_values
                    assert solution.assignment == base.assignment, workers
                    # The winning branch path is the tie-break witness.
                    assert solution.node_key == base.node_key, workers
        finally:
            for solver in solvers.values():
                solver.close()

    def test_parallel_matches_oracle_objectives(self):
        rng = random.Random(7)
        parallel = IlpSolver(workers=4)
        try:
            for _ in range(30):
                problem = _random_problem(rng)
                a = parallel.solve(problem)
                b = IlpSolver(engine="oracle").solve(problem)
                assert (a is None) == (b is None)
                if a is not None and b is not None:
                    assert a.objective_values == b.objective_values
                    assert problem.is_feasible_assignment(a.assignment)
            assert parallel.engine_fallbacks == 0
        finally:
            parallel.close()

    def test_process_mode_is_deterministic_too(self):
        sequential = IlpSolver(workers=1)
        processes = IlpSolver(workers=2, processes=True)
        try:
            for seed in range(8):
                problem = _random_problem(random.Random(1000 + seed))
                a = sequential.solve(problem)
                b = processes.solve(problem)
                assert (a is None) == (b is None), seed
                if a is not None and b is not None:
                    assert a.assignment == b.assignment, seed
                    assert a.node_key == b.node_key, seed
            # The heavy problem actually reaches the forked frontier.
            heavy = _branching_heavy()
            assert processes.solve(heavy).assignment == sequential.solve(heavy).assignment
        finally:
            processes.close()


# --------------------------------------------------------------------------- #
# Cancellation: a proven incumbent drains the queue without stale work
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_stale_node_is_dropped_without_reoptimising(self):
        """A queued node that can no longer win is discarded pre-expansion."""
        problem = _branching_heavy()
        engine = IncrementalIlpEngine(problem)
        tableau = engine._build_root()
        assert tableau is not None
        objective = dict(problem.objectives[0])
        costs, scale, offset = engine._encode_objective(objective)
        tableau.set_objective(costs)
        from repro.ilp.simplex import LpStatus

        assert tableau.primal_simplex() is LpStatus.OPTIMAL
        stage_args = (objective, scale, offset, False)

        store = IncumbentStore()
        children = engine._process_node(
            _BranchNode(tableau, None, (), None), store, *stage_args
        )
        assert len(children) == 2  # the relaxation is fractional: it branched
        # An incumbent that already beats everything below the ceil child:
        store.offer(Fraction(-10**6), (0,), {"x0": Fraction(0)})
        pivots_before = engine.stats.pivots
        stale = engine.stats.stale_drops
        assert engine._process_node(children[1], store, *stage_args) == []
        assert engine.stats.stale_drops == stale + 1
        # Dropped from the parent bound alone: no dual simplex, no pivots.
        assert engine.stats.pivots == pivots_before

    def test_feasibility_stale_nodes_do_not_charge_the_node_budget(self):
        """The sequential early break never pops stale nodes; neither may the
        threaded drain charge them, or a node_limit that workers=1 satisfies
        could flakily trip at workers>1."""
        problem = LinearProblem()
        coefficients = [2, 3, 5, 7, 11]
        for index, coefficient in enumerate(coefficients):
            problem.add_variable(f"x{index}", 0, 3)
        problem.add_constraint(
            {f"x{index}": value for index, value in enumerate(coefficients)},
            "==",
            23,
        )  # feasibility-only: no objective
        sequential = IlpSolver(workers=1)
        base = sequential.solve(problem)
        budget = sequential.statistics_summary()["nodes"] + 2
        for _ in range(5):
            solver = IlpSolver(node_limit=budget, workers=4)
            try:
                solution = solver.solve(problem)
                assert solution is not None
                assert solution.assignment == base.assignment
                assert solution.node_key == base.node_key
            finally:
                solver.close()

    def test_node_limit_verdict_is_worker_count_independent(self):
        """The node-limit error fires iff the sequential engine would hit it.

        Parallel exploration may overshoot (threads prune late) or undershoot
        (process buckets hold private budgets) the budget; on a parallel
        limit error the stage retries sequentially, so the verdict matches
        workers=1 either way.
        """
        heavy = _branching_heavy()
        with pytest.raises(RuntimeError, match="node limit"):
            IlpSolver(node_limit=5, workers=1).solve(heavy)
        for processes in (False, True):
            parallel = IlpSolver(node_limit=5, workers=4, processes=processes)
            try:
                with pytest.raises(RuntimeError, match="node limit"):
                    parallel.solve(heavy)
            finally:
                parallel.close()
        # And a budget the sequential engine satisfies must succeed parallel.
        sequential = IlpSolver(workers=1)
        base = sequential.solve(heavy)
        nodes = sequential.statistics_summary()["nodes"]
        roomy = IlpSolver(node_limit=nodes + 1, workers=4)
        try:
            assert roomy.solve(heavy).assignment == base.assignment
        finally:
            roomy.close()

    def test_parallel_queue_drains_with_prunes(self):
        """Once optimality is proven, the shared queue drains via prunes."""
        solver = IlpSolver(workers=4)
        try:
            solution = solver.solve(_branching_heavy())
            stats = solver.statistics_summary()
            assert solution is not None
            assert stats["parallel_stages"] >= 1  # the pool really engaged
            assert stats["bound_prunes"] + stats["stale_drops"] >= 1
            assert sum(stats["worker_nodes"]) > 0
            # Identical to the sequential engine, node path included.
            sequential = IlpSolver(workers=1).solve(_branching_heavy())
            assert solution.assignment == sequential.assignment
            assert solution.node_key == sequential.node_key == (0, 1, 0, 0)
        finally:
            solver.close()


# --------------------------------------------------------------------------- #
# Knob plumbing: env var, config JSON, scheduler, pipeline
# --------------------------------------------------------------------------- #
class TestPlumbing:
    def test_env_var_sets_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_ILP_WORKERS", "3")
        assert IlpSolver().workers == 3
        monkeypatch.setenv("REPRO_ILP_WORKERS", "zero")
        with pytest.raises(ValueError, match="REPRO_ILP_WORKERS"):
            IlpSolver()
        monkeypatch.setenv("REPRO_ILP_WORKERS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            IlpSolver()

    def test_env_var_opts_into_processes(self, monkeypatch):
        monkeypatch.setenv("REPRO_ILP_PROCESSES", "1")
        assert IlpSolver().processes is True
        monkeypatch.delenv("REPRO_ILP_PROCESSES")
        assert IlpSolver().processes is False

    def test_explicit_workers_beat_the_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ILP_WORKERS", "7")
        assert IlpSolver(workers=2).workers == 2

    def test_worker_pool_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.executor()
        pool.close()
        pool.close()
        # Usable again after close (lazily recreated).
        assert pool.executor() is not None
        pool.close()

    def test_scheduler_config_round_trips_the_knobs(self):
        from repro.scheduler.config import SchedulerConfig

        config = SchedulerConfig(name="par", solver_workers=4, solver_processes=True)
        restored = SchedulerConfig.from_json(config.to_json())
        assert restored.solver_workers == 4
        assert restored.solver_processes is True
        defaults = SchedulerConfig.from_json(SchedulerConfig().to_json())
        assert defaults.solver_workers is None
        assert defaults.solver_processes is None
        # Tri-state: an explicit False survives the round trip (it forces
        # threads even when REPRO_ILP_PROCESSES is set).
        threads = SchedulerConfig(name="thr", solver_processes=False)
        assert SchedulerConfig.from_json(threads.to_json()).solver_processes is False

    def test_config_false_forces_threads_over_the_environment(self, monkeypatch):
        import dataclasses

        from repro.scheduler.core import PolyTOPSScheduler
        from repro.scheduler.strategies import pluto_style
        from repro.suites.polybench.blas import gemm

        monkeypatch.setenv("REPRO_ILP_PROCESSES", "1")
        config = dataclasses.replace(
            pluto_style(), solver_workers=2, solver_processes=False
        )
        scheduler = PolyTOPSScheduler(gemm(6, 6, 6), config)
        assert scheduler.solver.processes is False
        config_default = dataclasses.replace(pluto_style(), solver_workers=2)
        scheduler = PolyTOPSScheduler(gemm(6, 6, 6), config_default)
        assert scheduler.solver.processes is True

    def test_scheduler_produces_identical_schedules_across_workers(self):
        import dataclasses

        from repro.scheduler.core import PolyTOPSScheduler
        from repro.scheduler.strategies import pluto_style
        from repro.suites.polybench.blas import gemm

        scop = gemm(6, 6, 6)
        base = PolyTOPSScheduler(scop, pluto_style()).schedule()
        config = dataclasses.replace(pluto_style(), solver_workers=4)
        parallel = PolyTOPSScheduler(scop, config).schedule()
        for statement in scop.statements:
            assert (
                parallel.schedule.statements[statement.name].rows
                == base.schedule.statements[statement.name].rows
            )
        assert parallel.statistics["workers"] == 4
        assert parallel.statistics["engine_fallbacks"] == 0

    def test_oracle_milp_result_reports_the_single_worker_shape(self):
        from repro.ilp import solve_milp

        result = solve_milp(_branching_heavy(), {"x0": 1, "x1": 1})
        assert result.worker_nodes == (result.nodes,)
        assert result.steals == 0
        assert result.prunes >= 0
        assert result.parallel_speedup == 1.0

    def test_pipeline_exposes_the_knob_and_the_counters(self):
        from repro.pipeline import Session
        from repro.scheduler.strategies import pluto_style
        from repro.suites.polybench.blas import gemm

        session = Session()
        scop = gemm(6, 6, 6)
        base = session.compile(scop, pluto_style())
        parallel = session.compile(scop, pluto_style(), solver_workers=2)
        assert parallel.schedule.statements == base.schedule.statements
        assert parallel.solver_statistics["workers"] == 2
        assert base.solver_statistics["workers"] == 1
        # Different worker counts are distinct cache entries, not collisions.
        assert session.compile(scop, pluto_style(), solver_workers=2) is parallel
        assert any("workers" in line for line in parallel.diagnostics)
