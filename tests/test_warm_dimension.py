"""Cross-dimension warm starts, irredundancy and the SolverOptions front door.

The hard contract of the warm path is **bit-identity**: a factored-basis hint
(or the LP-based irredundancy pruning of cached row blocks) must never change
a schedule, an objective value, or even a branch & bound ``node_key`` — only
the pivot counts getting there.  These tests pin that contract on the golden
kernels, differentially on random problems under hypothesis, and at the
soundness level for the row pruning itself.
"""

from __future__ import annotations

import json
import warnings
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import IlpSolver, LinearProblem, SolverOptions
from repro.ilp.options import CORE_CHOICES
from repro.polyhedra.emptiness import RedundancyProber
from repro.scheduler.config import SchedulerConfig


# --------------------------------------------------------------------------- #
# Scheduler-level bit-identity: warm on vs off
# --------------------------------------------------------------------------- #
def _capture(kernel: str, config, warm: bool, irredundancy: bool):
    """Schedule rows, node keys and solver statistics for one run."""
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.solver_context import SolverContext
    from repro.suites.polybench import build_kernel

    config.solver_options = SolverOptions(warm_start=warm, irredundancy=irredundancy)
    node_keys = []
    original_solve = SolverContext.solve

    def recording_solve(self, problem):
        solution = original_solve(self, problem)
        if solution is not None:
            node_keys.append(solution.node_key)
        return solution

    SolverContext.solve = recording_solve
    try:
        scheduler = PolyTOPSScheduler(build_kernel(kernel), config)
        result = scheduler.schedule()
    finally:
        SolverContext.solve = original_solve
    rows = {
        name: [str(row) for row in statement.rows]
        for name, statement in result.schedule.statements.items()
    }
    return rows, node_keys, scheduler.solver_context.statistics()


@pytest.mark.parametrize("kernel", ["gemm", "gemver", "jacobi-2d", "cholesky"])
def test_warm_start_bit_identity_on_golden_kernels(kernel):
    from repro.scheduler.strategies import pluto_style

    rows_on, keys_on, stats_on = _capture(kernel, pluto_style(), True, True)
    rows_off, keys_off, stats_off = _capture(kernel, pluto_style(), False, False)
    assert rows_on == rows_off
    assert keys_on == keys_off
    assert stats_on["warm_aborts"] == 0
    # The warm path must actually engage past the first dimension: every
    # hint is either installed or consciously skipped by the staleness gate
    # (gemm/gemver/cholesky hints score below the threshold and go cold).
    if stats_on["solve_calls"] > 1:
        assert stats_on["dim_warm_starts"] + stats_on["warm_skips"] > 0


def test_warm_start_saves_pivots_where_dimensions_chain():
    """jacobi-2d has deep bands; the warm basis must measurably cut pivots."""
    from repro.scheduler.strategies import pluto_style

    _, _, stats_on = _capture("jacobi-2d", pluto_style(), True, False)
    _, _, stats_off = _capture("jacobi-2d", pluto_style(), False, False)
    assert stats_on["dim_warm_starts"] > 0
    assert stats_on["warm_pivots_saved"] > 0
    assert stats_on["pivots"] < stats_off["pivots"]


@pytest.mark.parametrize("kernel", ["cholesky", "lu", "trisolv", "trmm"])
def test_staleness_gate_keeps_triangular_kernels_no_worse_than_cold(kernel):
    """The PR 8 regression, pinned closed: triangular nests chain dimensions
    whose row sets drift too far for the carried basis to install profitably.
    The staleness gate must route those hints cold, so the warm leg can never
    spend more pivots than the cold leg — while identical schedules stay the
    hard contract."""
    from repro.scheduler.strategies import pluto_style

    rows_on, keys_on, stats_on = _capture(kernel, pluto_style(), True, False)
    rows_off, keys_off, stats_off = _capture(kernel, pluto_style(), False, False)
    assert rows_on == rows_off
    assert keys_on == keys_off
    assert stats_on["pivots"] <= stats_off["pivots"]
    assert stats_on["warm_aborts"] == 0
    if stats_on["solve_calls"] > 1:
        assert stats_on["dim_warm_starts"] + stats_on["warm_skips"] > 0


def test_staleness_gate_skips_mismatched_hints():
    """A hint whose row signatures share nothing with the new problem must be
    skipped by the gate (counted), never installed or aborted."""
    a = LinearProblem()
    a.add_variable("x", 0, 9)
    a.add_variable("y", 0, 9)
    a.add_constraint({"x": Fraction(1), "y": Fraction(1)}, ">=", Fraction(3))
    a.add_objective({"x": Fraction(1), "y": Fraction(2)})
    solver = IlpSolver(options=SolverOptions())
    assert solver.solve(a) is not None
    hint = solver.last_warm_hint
    assert hint is not None

    b = LinearProblem()
    b.add_variable("u", 0, 9)
    b.add_variable("v", 0, 9)
    b.add_constraint({"u": Fraction(2), "v": Fraction(-1)}, "<=", Fraction(4))
    b.add_constraint({"v": Fraction(3)}, ">=", Fraction(2))
    b.add_objective({"u": Fraction(1)})
    assert solver.solve(b, warm_hint=hint) is not None
    assert solver.statistics.warm_skips >= 1
    assert solver.statistics.warm_aborts == 0


def test_irredundancy_drops_rows_without_changing_schedules():
    from repro.scheduler.strategies import isl_style

    rows_on, keys_on, stats_on = _capture("gemver", isl_style(), False, True)
    rows_off, keys_off, stats_off = _capture("gemver", isl_style(), False, False)
    assert rows_on == rows_off
    assert keys_on == keys_off
    assert stats_on["irredundant_rows_dropped"] > 0
    assert stats_off["irredundant_rows_dropped"] == 0


# --------------------------------------------------------------------------- #
# Engine-level differential: warm hint never changes the answer
# --------------------------------------------------------------------------- #
def _random_problem(draw_rows, bounds, objective):
    problem = LinearProblem()
    names = [f"x{i}" for i in range(len(bounds))]
    for name, upper in zip(names, bounds):
        problem.add_variable(name, 0, upper)
    for coeffs, sense, rhs in draw_rows:
        row = {names[i]: Fraction(c) for i, c in enumerate(coeffs) if c}
        if row:
            problem.add_constraint(row, sense, rhs)
    problem.add_objective(
        {names[i]: Fraction(c) for i, c in enumerate(objective) if c}
    )
    return problem


row_strategy = st.tuples(
    st.lists(st.integers(-3, 3), min_size=3, max_size=3),
    st.sampled_from([">=", "<=", "=="]),
    st.integers(-4, 8),
)


@st.composite
def triangular_box_rows(draw):
    """Chained coupling rows ``x_k >= x_{k+1} + c`` over a triangular box.

    This is the row shape of triangular nests (cholesky/lu/trisolv bands)
    whose drift between dimensions regressed the PR 8 warm path: the chain
    couples every variable to the next, so relaxing or re-basing one row
    reshapes the whole basis.
    """
    rows = []
    for k in range(2):
        coeffs = [0, 0, 0]
        coeffs[k], coeffs[k + 1] = 1, -1
        rows.append((coeffs, ">=", draw(st.integers(-1, 1))))
    return rows + draw(st.lists(row_strategy, min_size=0, max_size=2))


def _assert_warm_equals_cold(shared, rows_a, rows_b, bounds, objective, core):
    """solve(B, hint-from-A) == solve(B), bit for bit, on the given core."""
    options = SolverOptions(core=core)
    warm_solver = IlpSolver(options=options)
    warm_solver.solve(_random_problem(shared + rows_a, bounds, objective))
    hint = warm_solver.last_warm_hint

    problem_b = _random_problem(shared + rows_b, bounds, objective)
    warm = warm_solver.solve(problem_b, warm_hint=hint)
    cold = IlpSolver(options=options).solve(
        _random_problem(shared + rows_b, bounds, objective)
    )
    if cold is None:
        assert warm is None
    else:
        assert warm is not None
        assert warm.assignment == cold.assignment
        assert warm.objective_values == cold.objective_values
        assert warm.node_key == cold.node_key


@settings(max_examples=30, deadline=None)
@given(
    rows_a=st.lists(row_strategy, min_size=1, max_size=5),
    rows_b=st.lists(row_strategy, min_size=1, max_size=5),
    shared=st.lists(row_strategy, min_size=0, max_size=3),
    bounds=st.lists(st.integers(1, 6), min_size=3, max_size=3),
    objective=st.lists(st.integers(-2, 3), min_size=3, max_size=3),
    core=st.sampled_from(CORE_CHOICES),
)
def test_warm_hint_differential(rows_a, rows_b, shared, bounds, objective, core):
    """solve(B, hint-from-A) == solve(B) for related random problems, both cores."""
    _assert_warm_equals_cold(shared, rows_a, rows_b, bounds, objective, core)


@settings(max_examples=25, deadline=None)
@given(
    shared=triangular_box_rows(),
    rows_a=st.lists(row_strategy, min_size=0, max_size=3),
    rows_b=st.lists(row_strategy, min_size=0, max_size=3),
    bounds=st.lists(st.integers(1, 6), min_size=3, max_size=3),
    objective=st.lists(st.integers(-2, 3), min_size=3, max_size=3),
    core=st.sampled_from(CORE_CHOICES),
)
def test_warm_hint_differential_on_triangular_boxes(
    shared, rows_a, rows_b, bounds, objective, core
):
    """The same differential over triangular chains — stale hints that the
    gate skips (or installs that fail and fall back) must still answer bit
    for bit."""
    _assert_warm_equals_cold(shared, rows_a, rows_b, bounds, objective, core)


def test_solver_context_drops_stale_hint_after_warm_abort(monkeypatch):
    """A hint whose install aborted (and whose solve exported nothing fresh)
    must not be re-fed to every later dimension."""
    from repro.ilp.engine import WarmHint
    from repro.scheduler.solver_context import SolverContext

    context = SolverContext(options=SolverOptions(warm_start=True))
    hint = WarmHint(entries=())
    context._warm_hint = hint
    seen = {}

    def aborting_solve(problem, warm_hint=None):
        seen["hint"] = warm_hint
        context.solver.statistics.warm_aborts += 1
        return None

    monkeypatch.setattr(context.solver, "solve", aborting_solve)
    assert context.solve(LinearProblem()) is None
    assert seen["hint"] is hint
    assert context._warm_hint is None


# --------------------------------------------------------------------------- #
# Irredundancy soundness
# --------------------------------------------------------------------------- #
def _enumerate_box_points(boxes, names):
    points = [{}]
    for name in names:
        lower, upper = boxes[name]
        points = [
            {**point, name: value}
            for point in points
            for value in range(int(lower), int(upper) + 1)
        ]
    return points


def _satisfies(point, row):
    coefficients, sense, rhs = row
    lhs = sum(Fraction(c) * point.get(n, 0) for n, c in coefficients.items())
    if str(sense) == ">=":
        return lhs >= rhs
    if str(sense) == "<=":
        return lhs <= rhs
    return lhs == rhs


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.lists(st.integers(-2, 2), min_size=2, max_size=2),
            st.sampled_from([">=", "<=", "=="]),
            st.integers(-3, 5),
        ),
        min_size=2,
        max_size=6,
    )
)
def test_prune_is_sound_over_the_boxes(rows):
    """Every point of the box satisfying the kept rows satisfies the dropped."""
    boxes = {"a": (0, 3), "b": (0, 3)}
    block = [
        ({"a": Fraction(ca), "b": Fraction(cb)}, sense, Fraction(rhs))
        for (ca, cb), sense, rhs in rows
        if ca or cb
    ]
    if not block:
        return
    prober = RedundancyProber(SolverOptions())
    kept = prober.prune(block, boxes)
    dropped = [row for row in block if row not in kept]
    for point in _enumerate_box_points(boxes, ["a", "b"]):
        if all(_satisfies(point, row) for row in kept):
            for row in dropped:
                assert _satisfies(point, row), (point, row, kept)


def test_prune_drops_a_dominated_row_and_caches_the_verdict():
    RedundancyProber.clear_shared_store()
    prober = RedundancyProber(SolverOptions())
    block = [
        ({"a": Fraction(1)}, ">=", Fraction(2)),
        ({"a": Fraction(1)}, ">=", Fraction(1)),  # implied by the first row
    ]
    boxes = {"a": (0, 10)}
    kept = prober.prune(block, boxes)
    assert kept == [block[0]]
    assert prober.rows_dropped == 1
    again = prober.prune(list(block), boxes)
    assert again == [block[0]]
    assert prober.statistics()["irredundancy_reuse_hits"] == 1


def test_prune_never_drops_equalities_and_keeps_infeasible_blocks_whole():
    prober = RedundancyProber(SolverOptions())
    equalities = [
        ({"a": Fraction(1)}, "==", Fraction(2)),
        ({"a": Fraction(2)}, "==", Fraction(4)),  # same line, still kept
    ]
    assert prober.prune(equalities, {"a": (0, 10)}) == equalities
    infeasible = [
        ({"a": Fraction(1)}, ">=", Fraction(5)),
        ({"a": Fraction(1)}, "<=", Fraction(1)),
        ({"a": Fraction(1)}, ">=", Fraction(0)),
    ]
    assert prober.prune(infeasible, {"a": (0, 10)}) == infeasible


def test_prober_amortises_probes_through_one_context_per_block():
    """One engine context per block: every probe after the first re-roots the
    same factored tableau instead of rebuilding the standard form."""
    RedundancyProber.clear_shared_store()
    prober = RedundancyProber(SolverOptions())
    block = [
        ({"a": Fraction(1), "b": Fraction(1)}, ">=", Fraction(1)),
        ({"a": Fraction(1)}, ">=", Fraction(-2)),  # implied by a >= 0
        ({"b": Fraction(1)}, "<=", Fraction(9)),  # implied by b <= 3
        ({"a": Fraction(1), "b": Fraction(-1)}, ">=", Fraction(-3)),  # implied
    ]
    kept = prober.prune(block, {"a": (0, 3), "b": (0, 3)})
    assert kept == [block[0]]
    stats = prober.statistics()
    assert stats["irredundancy_contexts"] == 1
    assert stats["irredundancy_probes"] == 4
    assert stats["irredundancy_warm_probes"] == stats["irredundancy_probes"] - 1
    assert stats["irredundant_rows_dropped"] == 3


# --------------------------------------------------------------------------- #
# SolverOptions: the single front door
# --------------------------------------------------------------------------- #
def test_legacy_solver_kwargs_warn_and_fold_into_options():
    with pytest.warns(DeprecationWarning, match="workers") as record:
        legacy = IlpSolver(engine="incremental", core="tableau", workers=2)
    # The warning must point at this file (the caller), not the solver's own
    # frame — the stacklevel regression made every deprecation site report
    # solver.py and defeat per-module warning filters.
    assert record[0].filename == __file__
    modern = IlpSolver(
        options=SolverOptions(engine="incremental", core="tableau", workers=2)
    )
    assert legacy.options == modern.options
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        IlpSolver(options=SolverOptions())  # options path stays silent


def test_session_compile_per_knob_kwargs_warn(monkeypatch):
    from repro.pipeline.session import Session
    from repro.suites.polybench import build_kernel

    session = Session()
    scop = build_kernel("gemm")
    with pytest.warns(DeprecationWarning, match="solver_workers") as record:
        with_alias = session.compile(scop, solver_workers=1)
    assert record[0].filename == __file__
    explicit = session.compile(scop, solver=SolverOptions(workers=1))
    assert {
        name: [str(r) for r in s.rows]
        for name, s in with_alias.schedule.statements.items()
    } == {
        name: [str(r) for r in s.rows]
        for name, s in explicit.schedule.statements.items()
    }


def test_module_level_compile_warns_at_the_caller():
    from repro.pipeline import session as session_module
    from repro.suites.polybench import build_kernel

    with pytest.warns(DeprecationWarning, match="solver_workers") as record:
        session_module.compile(build_kernel("gemm"), solver_workers=1)
    assert record[0].filename == __file__


def test_env_typos_raise_loudly(monkeypatch):
    monkeypatch.setenv("REPRO_ILP_PROCESSES", "garbage")
    with pytest.raises(ValueError, match="REPRO_ILP_PROCESSES"):
        SolverOptions.from_env()
    monkeypatch.delenv("REPRO_ILP_PROCESSES")
    monkeypatch.setenv("REPRO_ILP_WARM_START", "maybe")
    with pytest.raises(ValueError, match="REPRO_ILP_WARM_START"):
        SolverOptions.from_env()
    monkeypatch.delenv("REPRO_ILP_WARM_START")
    monkeypatch.setenv("REPRO_ILP_WORKERS", "0")
    with pytest.raises(ValueError, match=">= 1"):
        SolverOptions.from_env()


def test_env_booleans_parse(monkeypatch):
    monkeypatch.setenv("REPRO_ILP_WARM_START", "off")
    monkeypatch.setenv("REPRO_ILP_IRREDUNDANCY", "0")
    options = SolverOptions.from_env()
    assert options.warm_start is False
    assert options.irredundancy is False
    monkeypatch.setenv("REPRO_ILP_WARM_START", "yes")
    assert SolverOptions.from_env().warm_start is True


def test_warm_staleness_env_and_constructor_validation(monkeypatch):
    monkeypatch.setenv("REPRO_ILP_WARM_STALENESS", "0.5")
    assert SolverOptions.from_env().warm_staleness == 0.5
    monkeypatch.setenv("REPRO_ILP_WARM_STALENESS", "1.5")
    with pytest.raises(ValueError, match="REPRO_ILP_WARM_STALENESS"):
        SolverOptions.from_env()
    monkeypatch.setenv("REPRO_ILP_WARM_STALENESS", "soon")
    with pytest.raises(ValueError, match="REPRO_ILP_WARM_STALENESS"):
        SolverOptions.from_env()
    with pytest.raises(ValueError, match="warm_staleness"):
        SolverOptions(warm_staleness=-0.1)
    with pytest.raises(ValueError, match="warm_staleness"):
        SolverOptions(warm_staleness=1.25)


def test_solver_options_round_trip_through_config_json():
    options = SolverOptions(core="tableau", workers=3, warm_start=False, warm_staleness=0.8)
    config = SchedulerConfig(name="rt", solver_options=options)
    document = json.loads(config.to_json())
    encoded = document["scheduling_strategy"]["options"]["solver_options"]
    assert encoded["core"] == "tableau"
    decoded = SchedulerConfig.from_json(config.to_json())
    assert decoded.solver_options == options
    assert decoded.resolved_solver_options().core == "tableau"


def test_config_field_overrides_layer_on_top_of_options():
    config = SchedulerConfig(
        solver_options=SolverOptions(workers=4, core="tableau"),
        solver_workers=2,
    )
    resolved = config.resolved_solver_options()
    assert resolved.workers == 2  # per-field override wins
    assert resolved.core == "tableau"  # untouched fields flow through
