"""Cross-dimension warm starts, irredundancy and the SolverOptions front door.

The hard contract of the warm path is **bit-identity**: a factored-basis hint
(or the LP-based irredundancy pruning of cached row blocks) must never change
a schedule, an objective value, or even a branch & bound ``node_key`` — only
the pivot counts getting there.  These tests pin that contract on the golden
kernels, differentially on random problems under hypothesis, and at the
soundness level for the row pruning itself.
"""

from __future__ import annotations

import json
import warnings
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import IlpSolver, LinearProblem, SolverOptions
from repro.ilp.options import CORE_CHOICES
from repro.polyhedra.emptiness import RedundancyProber
from repro.scheduler.config import SchedulerConfig


# --------------------------------------------------------------------------- #
# Scheduler-level bit-identity: warm on vs off
# --------------------------------------------------------------------------- #
def _capture(kernel: str, config, warm: bool, irredundancy: bool):
    """Schedule rows, node keys and solver statistics for one run."""
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.solver_context import SolverContext
    from repro.suites.polybench import build_kernel

    config.solver_options = SolverOptions(warm_start=warm, irredundancy=irredundancy)
    node_keys = []
    original_solve = SolverContext.solve

    def recording_solve(self, problem):
        solution = original_solve(self, problem)
        if solution is not None:
            node_keys.append(solution.node_key)
        return solution

    SolverContext.solve = recording_solve
    try:
        scheduler = PolyTOPSScheduler(build_kernel(kernel), config)
        result = scheduler.schedule()
    finally:
        SolverContext.solve = original_solve
    rows = {
        name: [str(row) for row in statement.rows]
        for name, statement in result.schedule.statements.items()
    }
    return rows, node_keys, scheduler.solver_context.statistics()


@pytest.mark.parametrize("kernel", ["gemm", "gemver", "jacobi-2d", "cholesky"])
def test_warm_start_bit_identity_on_golden_kernels(kernel):
    from repro.scheduler.strategies import pluto_style

    rows_on, keys_on, stats_on = _capture(kernel, pluto_style(), True, True)
    rows_off, keys_off, stats_off = _capture(kernel, pluto_style(), False, False)
    assert rows_on == rows_off
    assert keys_on == keys_off
    assert stats_on["warm_aborts"] == 0
    # The warm path must actually engage past the first dimension.
    if stats_on["solve_calls"] > 1:
        assert stats_on["dim_warm_starts"] > 0


def test_warm_start_saves_pivots_where_dimensions_chain():
    """jacobi-2d has deep bands; the warm basis must measurably cut pivots."""
    from repro.scheduler.strategies import pluto_style

    _, _, stats_on = _capture("jacobi-2d", pluto_style(), True, False)
    _, _, stats_off = _capture("jacobi-2d", pluto_style(), False, False)
    assert stats_on["dim_warm_starts"] > 0
    assert stats_on["warm_pivots_saved"] > 0
    assert stats_on["pivots"] < stats_off["pivots"]


def test_irredundancy_drops_rows_without_changing_schedules():
    from repro.scheduler.strategies import isl_style

    rows_on, keys_on, stats_on = _capture("gemver", isl_style(), False, True)
    rows_off, keys_off, stats_off = _capture("gemver", isl_style(), False, False)
    assert rows_on == rows_off
    assert keys_on == keys_off
    assert stats_on["irredundant_rows_dropped"] > 0
    assert stats_off["irredundant_rows_dropped"] == 0


# --------------------------------------------------------------------------- #
# Engine-level differential: warm hint never changes the answer
# --------------------------------------------------------------------------- #
def _random_problem(draw_rows, bounds, objective):
    problem = LinearProblem()
    names = [f"x{i}" for i in range(len(bounds))]
    for name, upper in zip(names, bounds):
        problem.add_variable(name, 0, upper)
    for coeffs, sense, rhs in draw_rows:
        row = {names[i]: Fraction(c) for i, c in enumerate(coeffs) if c}
        if row:
            problem.add_constraint(row, sense, rhs)
    problem.add_objective(
        {names[i]: Fraction(c) for i, c in enumerate(objective) if c}
    )
    return problem


row_strategy = st.tuples(
    st.lists(st.integers(-3, 3), min_size=3, max_size=3),
    st.sampled_from([">=", "<=", "=="]),
    st.integers(-4, 8),
)


@settings(max_examples=30, deadline=None)
@given(
    rows_a=st.lists(row_strategy, min_size=1, max_size=5),
    rows_b=st.lists(row_strategy, min_size=1, max_size=5),
    shared=st.lists(row_strategy, min_size=0, max_size=3),
    bounds=st.lists(st.integers(1, 6), min_size=3, max_size=3),
    objective=st.lists(st.integers(-2, 3), min_size=3, max_size=3),
    core=st.sampled_from(CORE_CHOICES),
)
def test_warm_hint_differential(rows_a, rows_b, shared, bounds, objective, core):
    """solve(B, hint-from-A) == solve(B) for related random problems, both cores."""
    options = SolverOptions(core=core)
    warm_solver = IlpSolver(options=options)
    warm_solver.solve(_random_problem(shared + rows_a, bounds, objective))
    hint = warm_solver.last_warm_hint

    problem_b = _random_problem(shared + rows_b, bounds, objective)
    warm = warm_solver.solve(problem_b, warm_hint=hint)
    cold = IlpSolver(options=options).solve(
        _random_problem(shared + rows_b, bounds, objective)
    )
    if cold is None:
        assert warm is None
    else:
        assert warm is not None
        assert warm.assignment == cold.assignment
        assert warm.objective_values == cold.objective_values
        assert warm.node_key == cold.node_key


# --------------------------------------------------------------------------- #
# Irredundancy soundness
# --------------------------------------------------------------------------- #
def _enumerate_box_points(boxes, names):
    points = [{}]
    for name in names:
        lower, upper = boxes[name]
        points = [
            {**point, name: value}
            for point in points
            for value in range(int(lower), int(upper) + 1)
        ]
    return points


def _satisfies(point, row):
    coefficients, sense, rhs = row
    lhs = sum(Fraction(c) * point.get(n, 0) for n, c in coefficients.items())
    if str(sense) == ">=":
        return lhs >= rhs
    if str(sense) == "<=":
        return lhs <= rhs
    return lhs == rhs


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(
            st.lists(st.integers(-2, 2), min_size=2, max_size=2),
            st.sampled_from([">=", "<=", "=="]),
            st.integers(-3, 5),
        ),
        min_size=2,
        max_size=6,
    )
)
def test_prune_is_sound_over_the_boxes(rows):
    """Every point of the box satisfying the kept rows satisfies the dropped."""
    boxes = {"a": (0, 3), "b": (0, 3)}
    block = [
        ({"a": Fraction(ca), "b": Fraction(cb)}, sense, Fraction(rhs))
        for (ca, cb), sense, rhs in rows
        if ca or cb
    ]
    if not block:
        return
    prober = RedundancyProber(SolverOptions())
    kept = prober.prune(block, boxes)
    dropped = [row for row in block if row not in kept]
    for point in _enumerate_box_points(boxes, ["a", "b"]):
        if all(_satisfies(point, row) for row in kept):
            for row in dropped:
                assert _satisfies(point, row), (point, row, kept)


def test_prune_drops_a_dominated_row_and_caches_the_verdict():
    prober = RedundancyProber(SolverOptions())
    block = [
        ({"a": Fraction(1)}, ">=", Fraction(2)),
        ({"a": Fraction(1)}, ">=", Fraction(1)),  # implied by the first row
    ]
    boxes = {"a": (0, 10)}
    kept = prober.prune(block, boxes)
    assert kept == [block[0]]
    assert prober.rows_dropped == 1
    again = prober.prune(list(block), boxes)
    assert again == [block[0]]
    assert prober.statistics()["irredundancy_reuse_hits"] == 1


def test_prune_never_drops_equalities_and_keeps_infeasible_blocks_whole():
    prober = RedundancyProber(SolverOptions())
    equalities = [
        ({"a": Fraction(1)}, "==", Fraction(2)),
        ({"a": Fraction(2)}, "==", Fraction(4)),  # same line, still kept
    ]
    assert prober.prune(equalities, {"a": (0, 10)}) == equalities
    infeasible = [
        ({"a": Fraction(1)}, ">=", Fraction(5)),
        ({"a": Fraction(1)}, "<=", Fraction(1)),
        ({"a": Fraction(1)}, ">=", Fraction(0)),
    ]
    assert prober.prune(infeasible, {"a": (0, 10)}) == infeasible


# --------------------------------------------------------------------------- #
# SolverOptions: the single front door
# --------------------------------------------------------------------------- #
def test_legacy_solver_kwargs_warn_and_fold_into_options():
    with pytest.warns(DeprecationWarning):
        legacy = IlpSolver(engine="incremental", core="tableau", workers=2)
    modern = IlpSolver(
        options=SolverOptions(engine="incremental", core="tableau", workers=2)
    )
    assert legacy.options == modern.options
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        IlpSolver(options=SolverOptions())  # options path stays silent


def test_session_compile_per_knob_kwargs_warn(monkeypatch):
    from repro.pipeline.session import Session
    from repro.suites.polybench import build_kernel

    session = Session()
    scop = build_kernel("gemm")
    with pytest.warns(DeprecationWarning, match="solver_workers"):
        with_alias = session.compile(scop, solver_workers=1)
    explicit = session.compile(scop, solver=SolverOptions(workers=1))
    assert {
        name: [str(r) for r in s.rows]
        for name, s in with_alias.schedule.statements.items()
    } == {
        name: [str(r) for r in s.rows]
        for name, s in explicit.schedule.statements.items()
    }


def test_env_typos_raise_loudly(monkeypatch):
    monkeypatch.setenv("REPRO_ILP_PROCESSES", "garbage")
    with pytest.raises(ValueError, match="REPRO_ILP_PROCESSES"):
        SolverOptions.from_env()
    monkeypatch.delenv("REPRO_ILP_PROCESSES")
    monkeypatch.setenv("REPRO_ILP_WARM_START", "maybe")
    with pytest.raises(ValueError, match="REPRO_ILP_WARM_START"):
        SolverOptions.from_env()
    monkeypatch.delenv("REPRO_ILP_WARM_START")
    monkeypatch.setenv("REPRO_ILP_WORKERS", "0")
    with pytest.raises(ValueError, match=">= 1"):
        SolverOptions.from_env()


def test_env_booleans_parse(monkeypatch):
    monkeypatch.setenv("REPRO_ILP_WARM_START", "off")
    monkeypatch.setenv("REPRO_ILP_IRREDUNDANCY", "0")
    options = SolverOptions.from_env()
    assert options.warm_start is False
    assert options.irredundancy is False
    monkeypatch.setenv("REPRO_ILP_WARM_START", "yes")
    assert SolverOptions.from_env().warm_start is True


def test_solver_options_round_trip_through_config_json():
    options = SolverOptions(core="tableau", workers=3, warm_start=False)
    config = SchedulerConfig(name="rt", solver_options=options)
    document = json.loads(config.to_json())
    encoded = document["scheduling_strategy"]["options"]["solver_options"]
    assert encoded["core"] == "tableau"
    decoded = SchedulerConfig.from_json(config.to_json())
    assert decoded.solver_options == options
    assert decoded.resolved_solver_options().core == "tableau"


def test_config_field_overrides_layer_on_top_of_options():
    config = SchedulerConfig(
        solver_options=SolverOptions(workers=4, core="tableau"),
        solver_workers=2,
    )
    resolved = config.resolved_solver_options()
    assert resolved.workers == 2  # per-field override wins
    assert resolved.core == "tableau"  # untouched fields flow through
