"""Differential and unit tests for the incremental warm-started ILP engine.

The engine (:mod:`repro.ilp.engine`) must return exactly what the retained
dense oracle path returns: same feasibility verdicts, same lexicographic
objective values, and — on the scheduler's problems — the same schedules.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.ilp import (
    EngineStatistics,
    IlpSolver,
    IncrementalIlpEngine,
    LinearProblem,
)
from repro.linalg.varspace import (
    VariableSpace,
    clear_denominators,
    reduce_integer_row,
)


# --------------------------------------------------------------------------- #
# Indexed-core units
# --------------------------------------------------------------------------- #
class TestVariableSpace:
    def test_interning_is_stable_and_dense(self):
        space = VariableSpace()
        assert space.intern("a") == 0
        assert space.intern("b") == 1
        assert space.intern("a") == 0
        assert space.names == ("a", "b")
        assert len(space) == 2
        assert "a" in space and "c" not in space

    def test_encode_decode_roundtrip(self):
        space = VariableSpace(["a", "b", "c"])
        row = space.encode({"c": Fraction(2), "a": Fraction(-1)})
        assert row == [Fraction(-1), Fraction(0), Fraction(2)]
        assert space.decode(row) == {"a": Fraction(-1), "c": Fraction(2)}

    def test_encode_interns_unknown_names(self):
        space = VariableSpace(["a"])
        row = space.encode({"b": 3})
        assert space.names == ("a", "b")
        assert row == [Fraction(0), Fraction(3)]

    def test_integer_row_helpers(self):
        assert clear_denominators([Fraction(1, 2), Fraction(1, 3)]) == [3, 2]
        assert reduce_integer_row([4, -6, 8]) == [2, -3, 4]
        assert reduce_integer_row([0, 0]) == [0, 0]
        # The canonical implementations live in linalg.rational.
        from repro.linalg.rational import normalize_integer_row, scale_to_integers

        assert clear_denominators is scale_to_integers
        assert reduce_integer_row is normalize_integer_row

    def test_eliminating_absent_variables_is_a_no_op(self):
        # Regression: interning a never-seen name used to alias the constant
        # column of already-built rows, silently corrupting the system.
        from repro.polyhedra.affine import AffineExpr
        from repro.polyhedra.constraint import AffineConstraint
        from repro.polyhedra.fourier_motzkin import eliminate_variables

        i = AffineExpr.variable("i")
        constraints = [
            AffineConstraint.equals(i, 5),
            AffineConstraint.less_equal(i, 10),
        ]
        projected = eliminate_variables(constraints, ["j", "k"])
        survivors = {str(c) for c in projected}
        assert any("i" in text and "==" in text for text in survivors), survivors


# --------------------------------------------------------------------------- #
# Engine behaviour
# --------------------------------------------------------------------------- #
class TestEngineBasics:
    def test_simple_lexicographic_solve(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        problem.add_variable("y", 0, 5)
        problem.add_constraint({"x": 1, "y": 1}, ">=", 4)
        problem.add_objective({"x": 1})
        problem.add_objective({"y": 1})
        solution = IncrementalIlpEngine(problem).solve()
        assert solution is not None
        assert solution.value("x") == 0 and solution.value("y") == 4
        assert solution.objective_values == [Fraction(0), Fraction(4)]

    def test_infeasible_returns_none(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 1)
        problem.add_constraint({"x": 1}, ">=", 5)
        assert IncrementalIlpEngine(problem).solve() is None

    def test_unbounded_raises_like_the_solver(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, None)
        problem.add_objective({"x": -1})
        with pytest.raises(ValueError, match="unbounded"):
            IncrementalIlpEngine(problem).solve()

    def test_integer_branching(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 10)
        problem.add_constraint({"x": 2}, ">=", 3)  # x >= 1.5 -> integer x >= 2
        problem.add_objective({"x": 1})
        solution = IncrementalIlpEngine(problem).solve()
        assert solution.value("x") == 2

    def test_no_integer_point_in_fractional_region(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 10)
        problem.add_constraint({"x": 2}, "==", 5)  # x = 2.5
        assert IncrementalIlpEngine(problem).solve() is None

    def test_free_and_shifted_variables(self):
        problem = LinearProblem()
        problem.add_variable("x", None, 5)
        problem.add_variable("y", -3, 5)
        problem.add_constraint({"x": 1, "y": 1}, "==", -4)
        problem.add_objective({"x": -1})
        solution = IncrementalIlpEngine(problem).solve()
        assert solution is not None
        assert solution.value("x") + solution.value("y") == -4
        assert solution.value("x") == -1  # maximal x given y <= 5... y = -3 -> x = -1

    def test_degenerate_problem_terminates(self):
        # The degenerate vertex forces ties in the ratio test; the Bland-style
        # tie-breaks must still terminate and find the optimum.
        problem = LinearProblem()
        problem.add_variable("x", 0, 10)
        problem.add_variable("y", 0, 10)
        problem.add_constraint({"x": 1, "y": 1}, "<=", 0)
        problem.add_constraint({"x": 1, "y": -1}, "<=", 0)
        problem.add_constraint({"x": 1}, ">=", 0)
        problem.add_objective({"x": -1})
        solution = IncrementalIlpEngine(problem).solve()
        assert solution is not None
        assert solution.value("x") == 0

    def test_statistics_are_recorded(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 9)
        problem.add_constraint({"x": 3}, ">=", 7)
        problem.add_objective({"x": 1})
        stats = EngineStatistics()
        engine = IncrementalIlpEngine(problem, stats=stats)
        engine.solve()
        assert stats.solves == 1
        assert stats.stages == 1
        assert stats.nodes >= 1
        assert stats.encode_seconds >= 0.0
        assert stats.solve_seconds > 0.0

    def test_warm_start_hits_on_branching(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 9)
        problem.add_variable("y", 0, 9)
        problem.add_constraint({"x": 2, "y": 2}, "==", 5)  # forces branching
        stats = EngineStatistics()
        assert IncrementalIlpEngine(problem, stats=stats).solve() is None
        assert stats.warm_start_hits > 0


class TestSolverDispatch:
    def test_explicit_backend_forces_oracle(self):
        from repro.ilp import ExactSimplexBackend

        solver = IlpSolver(backend=ExactSimplexBackend())
        assert solver.engine == "oracle"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            IlpSolver(engine="quantum")

    def test_statistics_summary_keys(self):
        solver = IlpSolver()
        problem = LinearProblem()
        problem.add_variable("x", 0, 3)
        problem.add_constraint({"x": 1}, ">=", 1)
        problem.add_objective({"x": 1})
        assert solver.solve(problem) is not None
        summary = solver.statistics_summary()
        for key in (
            "pivots",
            "nodes",
            "warm_start_hits",
            "encode_seconds",
            "solve_seconds",
            "lex_solves",
            "engine_fallbacks",
        ):
            assert key in summary
        assert summary["lex_solves"] == 1
        assert summary["engine_fallbacks"] == 0


# --------------------------------------------------------------------------- #
# Randomised differential tests: engine vs. dense oracle
# --------------------------------------------------------------------------- #
def _random_problem(rng: random.Random) -> LinearProblem:
    """Scheduler-shaped random MILP: bounded integers, mixed-sense rows."""
    problem = LinearProblem()
    n = rng.randint(2, 5)
    names = [f"x{i}" for i in range(n)]
    for name in names:
        if rng.random() < 0.25:
            problem.add_variable(name, -rng.randint(1, 3), rng.randint(2, 6))
        else:
            problem.add_variable(name, 0, rng.randint(2, 8))
    for _ in range(rng.randint(1, 7)):
        coefficients = {
            name: rng.randint(-3, 3)
            for name in rng.sample(names, rng.randint(1, n))
        }
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        problem.add_constraint(
            coefficients, rng.choice([">=", "<=", "=="]), rng.randint(-5, 9)
        )
    for _ in range(rng.randint(0, 3)):
        objective = {name: rng.randint(-3, 3) for name in names}
        objective = {k: v for k, v in objective.items() if v}
        if objective:
            problem.add_objective(objective)
    return problem


class TestDifferential:
    def test_engine_matches_oracle_on_random_problems(self):
        rng = random.Random(20260730)
        fallbacks = 0
        for _ in range(150):
            problem = _random_problem(rng)
            incremental = IlpSolver(engine="incremental")
            oracle = IlpSolver(engine="oracle")
            a = incremental.solve(problem)
            b = oracle.solve(problem)
            assert (a is None) == (b is None)
            if a is not None and b is not None:
                assert a.objective_values == b.objective_values
                assert problem.is_feasible_assignment(a.assignment)
            fallbacks += incremental.engine_fallbacks
        # The engine must stand on its own on scheduler-shaped problems.
        assert fallbacks == 0

    def test_engine_matches_oracle_with_fractional_data(self):
        rng = random.Random(7)
        for _ in range(60):
            problem = LinearProblem()
            names = ["a", "b", "c"]
            for name in names:
                problem.add_variable(name, 0, rng.randint(3, 6))
            for _ in range(rng.randint(1, 4)):
                coefficients = {
                    name: Fraction(rng.randint(-4, 4), rng.randint(1, 3))
                    for name in rng.sample(names, rng.randint(1, 3))
                }
                coefficients = {k: v for k, v in coefficients.items() if v}
                if not coefficients:
                    continue
                problem.add_constraint(
                    coefficients,
                    rng.choice([">=", "<=", "=="]),
                    Fraction(rng.randint(-4, 8), rng.randint(1, 2)),
                )
            problem.add_objective({name: rng.randint(-2, 3) for name in names})
            a = IlpSolver(engine="incremental").solve(problem)
            b = IlpSolver(engine="oracle").solve(problem)
            assert (a is None) == (b is None)
            if a is not None and b is not None:
                assert a.objective_values == b.objective_values
                assert problem.is_feasible_assignment(a.assignment)

    def test_engine_and_oracle_schedule_identically(self):
        """Full-path differential: both engines must produce the same schedule."""
        from repro.scheduler.core import PolyTOPSScheduler
        from repro.scheduler.strategies import isl_style, pluto_style
        from repro.suites.polybench.blas import gemm, gemver
        from repro.suites.polybench.stencils import jacobi_2d

        import os

        saved = os.environ.get("REPRO_ILP_ENGINE")
        try:
            for scop in (gemm(6, 6, 6), gemver(8), jacobi_2d(6, 3)):
                for config in (pluto_style(), isl_style()):
                    os.environ["REPRO_ILP_ENGINE"] = "incremental"
                    incremental = PolyTOPSScheduler(scop, config).schedule()
                    os.environ["REPRO_ILP_ENGINE"] = "oracle"
                    oracle = PolyTOPSScheduler(scop, config).schedule()
                    self._compare(scop, config, incremental, oracle)
        finally:
            if saved is None:
                os.environ.pop("REPRO_ILP_ENGINE", None)
            else:
                os.environ["REPRO_ILP_ENGINE"] = saved

    @staticmethod
    def _compare(scop, config, incremental, oracle):
        for statement in scop.statements:
            assert (
                incremental.schedule.statements[statement.name].rows
                == oracle.schedule.statements[statement.name].rows
            ), f"schedule mismatch on {scop.name}/{config.name}/{statement.name}"
        assert (
            incremental.statistics["engine_fallbacks"] == 0
        ), f"engine fell back on {scop.name}/{config.name}"


# --------------------------------------------------------------------------- #
# Scheduler-layer cache keying (the id()-reuse satellite fix)
# --------------------------------------------------------------------------- #
class TestSolverContextCaching:
    def test_dependence_interning_is_stable(self):
        from repro.deps.analysis import compute_dependences
        from repro.scheduler.solver_context import SolverContext
        from repro.suites.polybench.blas import gemm

        dependences = compute_dependences(gemm(6, 6, 6))
        context = SolverContext(dependences=dependences)
        first = [context.intern_dependence(dep) for dep in dependences]
        second = [context.intern_dependence(dep) for dep in dependences]
        assert first == second == list(range(len(dependences)))
        # The context pins the objects: the identity map cannot be confused
        # by garbage collection recycling an id.
        assert context.interned_dependences == tuple(dependences)

    def test_legality_cache_uses_stable_indices(self):
        from repro.deps.analysis import compute_dependences
        from repro.scheduler.config import SchedulerConfig
        from repro.scheduler.ilp_builder import IlpBuilder
        from repro.scheduler.progression import ProgressionState
        from repro.scheduler.solver_context import SolverContext
        from repro.suites.polybench.blas import gemm

        scop = gemm(6, 6, 6)
        dependences = compute_dependences(scop)
        config = SchedulerConfig(name="test")
        context = SolverContext(dependences=dependences)
        builder = IlpBuilder(scop, config, {}, context)
        progression = ProgressionState(list(scop.statements))
        builder.build(0, dependences, progression, config.dimension_config(0))
        cache = context.block_cache("legality")
        assert set(cache) <= set(range(len(dependences)))
        assert len(cache) == len(dependences)

    def test_scheduling_statistics_expose_solver_counters(self):
        from repro.scheduler.core import PolyTOPSScheduler
        from repro.suites.polybench.blas import gemm

        result = PolyTOPSScheduler(gemm(6, 6, 6)).schedule()
        for key in ("ilp_solved", "pivots", "nodes", "warm_start_hits", "solve_calls"):
            assert key in result.statistics
        assert result.statistics["solve_calls"] >= 1
