"""Code generation, execution-based legality validation and post-processing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import (
    CallNode,
    GuardNode,
    LoopNode,
    count_guards,
    count_loops,
    generate_ast,
    run_original,
    run_schedule,
    to_c,
)
from repro.deps import compute_dependences
from repro.scheduler import (
    PolyTOPSScheduler,
    isl_style,
    pluto_style,
    tensor_scheduler_style,
)
from repro.transform import (
    apply_wavefront,
    band_is_permutable,
    compute_tiling,
    detect_parallel_dimensions,
    schedule_is_legal,
)


def _transformed(scop, config):
    deps = compute_dependences(scop)
    result = PolyTOPSScheduler(scop, config, dependences=deps).schedule()
    return result


def _arrays_match(scop, schedule, tiling=None):
    reference = scop.allocate_arrays()
    run_original(scop, reference)
    transformed = scop.allocate_arrays()
    run_schedule(scop, schedule, transformed, tiling=tiling)
    return all(np.allclose(reference[name], transformed[name]) for name in reference)


class TestGenerator:
    def test_original_schedule_executes_all_instances(self, gemm_scop):
        arrays = gemm_scop.allocate_arrays()
        stats = run_original(gemm_scop, arrays)
        # 10x10 init instances + 10x10x10 update instances
        assert stats.instances == 100 + 1000
        assert stats.per_statement["S1"] == 1000

    def test_ast_structure(self, gemm_scop):
        ast = generate_ast(gemm_scop, gemm_scop.original_schedule())
        assert count_loops(ast) > 0
        assert count_guards(ast) > 0
        kinds = {type(node) for node in ast.walk()}
        assert LoopNode in kinds and GuardNode in kinds and CallNode in kinds

    def test_scalar_dimension_splits_statements(self, sequence_scop):
        ast = generate_ast(sequence_scop, sequence_scop.original_schedule())
        # Three separate loop nests at the top level (one per statement).
        top_loops = [node for node in ast.body if isinstance(node, LoopNode)]
        assert len(top_loops) == 3

    def test_c_writer_output(self, gemm_scop):
        ast = generate_ast(gemm_scop, gemm_scop.original_schedule())
        code = to_c(gemm_scop, ast)
        assert "for (int" in code
        assert "C[i][j]" in code

    def test_c_writer_pragmas_for_parallel_loops(self, listing1_scop):
        result = _transformed(listing1_scop, tensor_scheduler_style())
        result.schedule.parallel_dims = detect_parallel_dimensions(
            result.schedule, result.dependences
        )
        code = to_c(listing1_scop, generate_ast(listing1_scop, result.schedule))
        assert "#pragma omp parallel for" in code


class TestSemanticEquivalence:
    """Transformed schedules must compute exactly what the original code computes."""

    @pytest.mark.parametrize("config_factory", [pluto_style, tensor_scheduler_style, isl_style])
    def test_gemm_all_strategies(self, gemm_scop, config_factory):
        result = _transformed(gemm_scop, config_factory())
        assert _arrays_match(gemm_scop, result.schedule)

    @pytest.mark.parametrize("config_factory", [pluto_style, tensor_scheduler_style])
    def test_jacobi_all_strategies(self, jacobi_scop, config_factory):
        result = _transformed(jacobi_scop, config_factory())
        assert _arrays_match(jacobi_scop, result.schedule)

    def test_listing1_interchange(self, listing1_scop):
        result = _transformed(listing1_scop, tensor_scheduler_style())
        assert _arrays_match(listing1_scop, result.schedule)

    def test_sequence_fusion(self, sequence_scop):
        result = _transformed(sequence_scop, pluto_style())
        assert _arrays_match(sequence_scop, result.schedule)

    def test_gemm_tiled_execution(self, gemm_scop):
        result = _transformed(gemm_scop, pluto_style())
        tiling = compute_tiling(result.schedule, result.dependences, tile_sizes=(4, 4, 4))
        assert tiling.bands, "gemm must expose a tilable band"
        assert _arrays_match(gemm_scop, result.schedule, tiling)

    def test_wavefront_execution(self, jacobi_scop):
        result = _transformed(jacobi_scop, pluto_style())
        skewed, _applied = apply_wavefront(result.schedule, result.dependences)
        assert _arrays_match(jacobi_scop, skewed)


class TestTransform:
    def test_parallel_detection_listing1(self, listing1_scop):
        result = _transformed(listing1_scop, tensor_scheduler_style())
        parallel = detect_parallel_dimensions(result.schedule, result.dependences)
        assert all(parallel)  # both dimensions of a fully parallel kernel

    def test_parallel_detection_jacobi_time_loop(self, jacobi_scop):
        schedule = jacobi_scop.original_schedule()
        deps = compute_dependences(jacobi_scop)
        parallel = detect_parallel_dimensions(schedule, deps)
        # Dimension 0 of the 2d+1 schedule is a constant; dimension 1 is the
        # time loop, which carries dependences and cannot be parallel.
        assert parallel[1] is False

    def test_schedule_is_legal_detects_violation(self, jacobi_scop):
        deps = compute_dependences(jacobi_scop)
        schedule = jacobi_scop.original_schedule()
        assert schedule_is_legal(schedule, deps)
        # Reversing the time loop breaks every time-carried dependence.
        from repro.model.schedule import StatementSchedule

        broken = schedule.copy()
        for name, statement_schedule in schedule.statements.items():
            rows = list(statement_schedule.rows)
            rows[1] = rows[1] * -1
            broken.statements[name] = StatementSchedule(name, tuple(rows))
        assert not schedule_is_legal(broken, deps)

    def test_tiling_requires_permutable_band(self, gemm_scop):
        result = _transformed(gemm_scop, pluto_style())
        bands = result.schedule.tilable_bands()
        assert bands
        assert band_is_permutable(result.schedule, bands[0], result.dependences)

    def test_tiling_spec_sizes(self, gemm_scop):
        result = _transformed(gemm_scop, pluto_style())
        tiling = compute_tiling(result.schedule, result.dependences, tile_sizes=(5,))
        for band in tiling.bands:
            assert all(size == 5 for size in band.tile_sizes)
        assert tiling.is_tiled(band.dimensions[0])

    def test_wavefront_only_applies_to_sequential_bands(self, listing1_scop):
        result = _transformed(listing1_scop, tensor_scheduler_style())
        result.schedule.parallel_dims = detect_parallel_dimensions(
            result.schedule, result.dependences
        )
        _schedule, applied = apply_wavefront(result.schedule, result.dependences)
        assert not applied  # already parallel: nothing to do

    def test_wavefront_exposes_parallelism_on_jacobi(self, jacobi_scop):
        result = _transformed(jacobi_scop, pluto_style())
        skewed, applied = apply_wavefront(result.schedule, result.dependences)
        if applied:
            assert any(skewed.parallel_dims[1:])
