"""Behavioural tests of the PolyTOPS scheduler (Algorithm 1) and its configurations."""

from __future__ import annotations

import pytest

from repro.deps import compute_dependences
from repro.scheduler import (
    Directive,
    FusionSpec,
    PolyTOPSScheduler,
    SchedulerConfig,
    SchedulingError,
    isl_style,
    kernel_specific,
    pluto_style,
    tensor_scheduler_style,
)
from repro.transform import detect_parallel_dimensions, schedule_is_legal


def _schedule(scop, config=None):
    deps = compute_dependences(scop)
    result = PolyTOPSScheduler(scop, config or pluto_style(), dependences=deps).schedule()
    return result, deps


class TestBasicScheduling:
    def test_gemm_pluto_style_is_legal(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        assert not result.fallback_to_original
        assert schedule_is_legal(result.schedule, result.dependences)

    def test_gemm_schedules_have_equal_dimensionality(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        dims = {s.n_dims for s in result.schedule.statements.values()}
        assert len(dims) == 1

    def test_gemm_has_outer_parallel_dimension(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        assert any(result.schedule.parallel_dims)

    def test_jacobi_pluto_style_finds_skewing(self, jacobi_scop):
        result, _ = _schedule(jacobi_scop)
        assert not result.fallback_to_original
        assert schedule_is_legal(result.schedule, result.dependences)
        # Pluto-style time-skews jacobi-1d: some row mixes t and the space iterator.
        skewed = False
        for statement in jacobi_scop.statements:
            for row in result.schedule.rows_for(statement.name):
                iterator_terms = [
                    name for name in statement.iterators if row.coefficient(name) != 0
                ]
                if len(iterator_terms) > 1:
                    skewed = True
        assert skewed

    def test_jacobi_tensor_style_avoids_skewing(self, jacobi_scop):
        result, _ = _schedule(jacobi_scop, tensor_scheduler_style())
        for statement in jacobi_scop.statements:
            for row in result.schedule.rows_for(statement.name):
                iterator_terms = [
                    name for name in statement.iterators if row.coefficient(name) != 0
                ]
                assert len(iterator_terms) <= 1
        assert schedule_is_legal(result.schedule, result.dependences)

    def test_listing1_tensor_style_interchanges_statement0(self, listing1_scop):
        result, _ = _schedule(listing1_scop, tensor_scheduler_style())
        rows_s0 = result.schedule.rows_for("S0")
        # The paper's motivating transformation: S0 is interchanged so that its
        # innermost dimension is the contiguous iterator i (c[j][i]).
        inner = rows_s0[-1] if rows_s0[-1].coefficients else rows_s0[-2]
        assert inner.coefficient("i") != 0
        outer = rows_s0[0]
        assert outer.coefficient("j") != 0

    def test_sequence_is_fused_by_proximity(self, sequence_scop):
        result, _ = _schedule(sequence_scop)
        assert schedule_is_legal(result.schedule, result.dependences)
        # Proximity pulls the three producer/consumer statements together: at
        # the loop dimension they share the same affine form of their iterator.
        assert result.schedule.n_dims <= 3

    def test_isl_style_runs_and_is_legal(self, jacobi_scop):
        result, _ = _schedule(jacobi_scop, isl_style())
        assert schedule_is_legal(result.schedule, result.dependences)

    def test_statistics_reported(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        assert result.statistics["ilp_solved"] >= 1
        assert result.statistics["dimensions"] == result.schedule.n_dims


class TestFusionControl:
    def test_forced_total_distribution(self, sequence_scop):
        config = kernel_specific(
            name="distribute-all",
            fusion=(FusionSpec(dimension=0, total_distribution=True),),
        )
        result, _ = _schedule(sequence_scop, config)
        assert schedule_is_legal(result.schedule, result.dependences)
        # Dimension 0 must be a scalar dimension with three distinct values.
        values = {
            int(result.schedule.rows_for(name)[0].constant) for name in ("S0", "S1", "S2")
        }
        assert len(values) == 3

    def test_explicit_fusion_groups(self, sequence_scop):
        config = kernel_specific(
            name="fuse-first-two",
            fusion=(FusionSpec(dimension=0, groups=(("0", "1"), ("2",))),),
        )
        result, _ = _schedule(sequence_scop, config)
        row0 = {name: int(result.schedule.rows_for(name)[0].constant) for name in ("S0", "S1", "S2")}
        assert row0["S0"] == row0["S1"] != row0["S2"]

    def test_illegal_fusion_order_raises(self, sequence_scop):
        config = kernel_specific(
            name="illegal",
            fusion=(FusionSpec(dimension=0, groups=(("2",), ("0", "1"))),),
        )
        deps = compute_dependences(sequence_scop)
        with pytest.raises(SchedulingError):
            PolyTOPSScheduler(sequence_scop, config, dependences=deps).schedule()

    def test_dimensionality_heuristic_distributes_gemm(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        # S0 (depth 2) and S1 (depth 3) are separated at the outermost scalar dim.
        first_s0 = result.schedule.rows_for("S0")[0]
        first_s1 = result.schedule.rows_for("S1")[0]
        assert first_s0.is_constant() and first_s1.is_constant()
        assert first_s0.constant != first_s1.constant


class TestDirectivesAndConstraints:
    def test_vectorize_directive_recorded(self, gemm_scop):
        config = kernel_specific(
            name="vec",
            directives=(Directive(kind="vectorize", statements=("1",), iterator="j"),),
        )
        result, _ = _schedule(gemm_scop, config)
        assert result.schedule.vectorized.get("S1") == "j"
        assert schedule_is_legal(result.schedule, result.dependences)

    def test_auto_vectorization_detects_contiguous_iterator(self, gemm_scop):
        config = kernel_specific(name="autovec", auto_vectorize=True)
        result, _ = _schedule(gemm_scop, config)
        assert result.schedule.vectorized.get("S1") == "j"

    def test_illegal_directive_is_dropped(self, jacobi_scop):
        # Asking for the time loop to be parallel cannot be satisfied; the
        # scheduler must drop the directive rather than fail.
        config = kernel_specific(
            name="bad-directive",
            directives=(Directive(kind="parallel", statements=("0", "1")),),
        )
        result, _ = _schedule(jacobi_scop, config)
        assert not result.fallback_to_original
        assert schedule_is_legal(result.schedule, result.dependences)

    def test_custom_constraint_disables_skewing(self, jacobi_scop):
        config = kernel_specific(name="noskew", constraints=("no-skewing",))
        result, _ = _schedule(jacobi_scop, config)
        for statement in jacobi_scop.statements:
            for row in result.schedule.rows_for(statement.name):
                nonzero = [n for n in statement.iterators if row.coefficient(n) != 0]
                assert len(nonzero) <= 1

    def test_custom_constraint_on_specific_coefficient(self, gemm_scop):
        # Force the k coefficient of S1 to stay zero on every dimension except
        # the last one it needs; combined with legality this pushes k innermost.
        config = kernel_specific(name="custom", constraints=("S1_it_0 >= 0",))
        result, _ = _schedule(gemm_scop, config)
        assert schedule_is_legal(result.schedule, result.dependences)


class TestResultBookkeeping:
    def test_all_dependences_strongly_satisfied_for_gemm(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        assert result.unsatisfied_dependences() == []

    def test_parallel_detection_matches_recomputation(self, gemm_scop):
        result, _ = _schedule(gemm_scop)
        recomputed = detect_parallel_dimensions(result.schedule, result.dependences)
        assert recomputed == list(result.schedule.parallel_dims)

    def test_scheduler_with_explicit_dependences(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        result = PolyTOPSScheduler(gemm_scop, pluto_style(), dependences=deps).schedule()
        assert len(result.dependences) <= len(deps)  # duplicates are merged

    def test_empty_scop(self):
        from repro.model import ScopBuilder

        scop = ScopBuilder("empty").build()
        result = PolyTOPSScheduler(scop, pluto_style(), dependences=[]).schedule()
        assert result.schedule.n_dims == 0
