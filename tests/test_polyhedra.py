"""Unit and property tests for affine expressions, polyhedra, projection and Farkas."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra import (
    CONSTANT_KEY,
    AffineConstraint,
    AffineExpr,
    ConstraintKind,
    Polyhedron,
    Space,
    count_integer_points,
    eliminate_variable,
    eliminate_variables,
    enumerate_integer_points,
    farkas_nonnegative,
    find_integer_point,
    is_integer_empty,
    simplify_constraints,
)


def _box(names, lows, highs, parameters=()):
    constraints = []
    for name, low, high in zip(names, lows, highs):
        variable = AffineExpr.variable(name)
        constraints.append(AffineConstraint.greater_equal(variable, low))
        constraints.append(AffineConstraint.less_equal(variable, high))
    return Polyhedron.from_constraints(Space(tuple(names), tuple(parameters)), constraints)


class TestAffineExpr:
    def test_variable_and_constant(self):
        expr = AffineExpr.variable("i") + 3
        assert expr.coefficient("i") == 1
        assert expr.constant == 3

    def test_algebra(self):
        i, j = AffineExpr.variable("i"), AffineExpr.variable("j")
        expr = 2 * i - j + 5
        assert expr.coefficient("i") == 2
        assert expr.coefficient("j") == -1
        assert expr.constant == 5
        assert (expr - expr).is_zero()

    def test_zero_coefficients_removed(self):
        i = AffineExpr.variable("i")
        assert "i" not in (i - i).coefficients

    def test_substitute(self):
        i, n = AffineExpr.variable("i"), AffineExpr.variable("N")
        expr = 2 * i + 1
        substituted = expr.substitute({"i": n - 1})
        assert substituted == 2 * n - 1

    def test_rename(self):
        expr = AffineExpr.variable("i") + AffineExpr.variable("j")
        renamed = expr.rename({"i": "x"})
        assert renamed.coefficient("x") == 1 and renamed.coefficient("j") == 1

    def test_evaluate(self):
        expr = 3 * AffineExpr.variable("i") - 2
        assert expr.evaluate({"i": 4}) == 10

    def test_evaluate_missing_dimension(self):
        with pytest.raises(KeyError):
            AffineExpr.variable("i").evaluate({})

    def test_as_dict_includes_constant(self):
        expr = AffineExpr.variable("i") + 7
        assert expr.as_dict() == {"i": Fraction(1), CONSTANT_KEY: Fraction(7)}

    @given(st.integers(-10, 10), st.integers(-10, 10), st.integers(-10, 10))
    @settings(max_examples=30, deadline=None)
    def test_evaluation_is_linear(self, a, b, point):
        i = AffineExpr.variable("i")
        left = (a * i + b).evaluate({"i": point})
        assert left == a * point + b


class TestConstraints:
    def test_greater_equal_normalisation(self):
        i = AffineExpr.variable("i")
        constraint = AffineConstraint.greater_equal(i, 3)
        assert constraint.is_satisfied({"i": 3})
        assert not constraint.is_satisfied({"i": 2})

    def test_less_equal(self):
        i = AffineExpr.variable("i")
        constraint = AffineConstraint.less_equal(i, 3)
        assert constraint.is_satisfied({"i": 3})
        assert not constraint.is_satisfied({"i": 4})

    def test_equality(self):
        i = AffineExpr.variable("i")
        constraint = AffineConstraint.equals(2 * i, 4)
        assert constraint.is_satisfied({"i": 2})
        assert not constraint.is_satisfied({"i": 1})

    def test_trivial_detection(self):
        assert AffineConstraint.greater_equal(AffineExpr.const(1), 0).is_trivially_true()
        assert AffineConstraint.greater_equal(AffineExpr.const(-1), 0).is_trivially_false()
        assert AffineConstraint.equals(AffineExpr.const(0), 0).is_trivially_true()

    def test_normalized_scales_to_coprime_integers(self):
        i = AffineExpr.variable("i")
        constraint = AffineConstraint(AffineExpr({"i": Fraction(2, 4)}, Fraction(1, 2)))
        normal = constraint.normalized()
        assert normal.expression.coefficient("i") == 1
        assert normal.expression.constant == 1

    def test_negated_inequality(self):
        i = AffineExpr.variable("i")
        constraint = AffineConstraint.greater_equal(i, 0)
        negated = constraint.negated_inequality()
        assert negated.is_satisfied({"i": -1})
        assert not negated.is_satisfied({"i": 0})

    def test_cannot_negate_equality(self):
        with pytest.raises(ValueError):
            AffineConstraint.equals(AffineExpr.variable("i"), 0).negated_inequality()


class TestFourierMotzkin:
    def test_projection_of_square(self):
        box = _box(["i", "j"], [0, 0], [4, 4])
        projected = eliminate_variable(list(box.constraints), "j")
        space = Space(("i",), ())
        result = Polyhedron.from_constraints(space, projected)
        assert not result.is_empty()
        assert result.contains({"i": 4})
        assert not result.contains({"i": 5})

    def test_equality_substitution(self):
        i, j = AffineExpr.variable("i"), AffineExpr.variable("j")
        constraints = [
            AffineConstraint.equals(j, 2 * i),
            AffineConstraint.less_equal(j, 6),
            AffineConstraint.greater_equal(j, 0),
        ]
        projected = eliminate_variable(constraints, "j")
        result = Polyhedron.from_constraints(Space(("i",), ()), projected)
        assert result.contains({"i": 3})
        assert not result.contains({"i": 4})

    def test_simplify_removes_duplicates_and_trivial(self):
        i = AffineExpr.variable("i")
        constraints = [
            AffineConstraint.greater_equal(i, 0),
            AffineConstraint.greater_equal(2 * i, 0),
            AffineConstraint.greater_equal(AffineExpr.const(3), 0),
        ]
        assert len(simplify_constraints(constraints)) == 1

    @given(
        st.integers(0, 3), st.integers(4, 7), st.integers(0, 3), st.integers(4, 7),
        st.integers(-2, 8), st.integers(-2, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_projection_soundness(self, ilo, ihi, jlo, jhi, i_point, j_point):
        """A point is in the projection iff some j completes it (boxes are exact)."""
        box = _box(["i", "j"], [ilo, jlo], [ihi, jhi])
        projected = Polyhedron.from_constraints(
            Space(("i",), ()), eliminate_variable(list(box.constraints), "j")
        )
        inside_full = box.contains({"i": i_point, "j": j_point})
        if inside_full:
            assert projected.contains({"i": i_point})
        if projected.contains({"i": i_point}):
            assert ilo <= i_point <= ihi


class TestPolyhedron:
    def test_empty_detection(self):
        poly = _box(["i"], [3], [2])
        assert poly.is_empty()

    def test_sample_point_in_set(self):
        poly = _box(["i", "j"], [1, 2], [5, 6])
        point = poly.sample_point()
        assert point is not None
        assert poly.contains(point)

    def test_parametric_emptiness(self):
        space = Space(("i",), ("N",))
        i, n = AffineExpr.variable("i"), AffineExpr.variable("N")
        poly = Polyhedron.from_constraints(
            space,
            [
                AffineConstraint.greater_equal(i, 0),
                AffineConstraint.less_equal(i, n - 1),
                AffineConstraint.greater_equal(n, 1),
            ],
        )
        assert not poly.is_empty()
        assert is_integer_empty(poly.add_constraints([AffineConstraint.less_equal(n, 0)]))

    def test_enumerate_points_count(self):
        poly = _box(["i", "j"], [0, 0], [2, 3])
        points = enumerate_integer_points(poly)
        assert len(points) == 12

    def test_enumeration_requires_fixed_parameters(self):
        space = Space(("i",), ("N",))
        poly = Polyhedron.universe(space)
        with pytest.raises(ValueError):
            enumerate_integer_points(poly)

    def test_count_with_parameter_values(self):
        space = Space(("i",), ("N",))
        i, n = AffineExpr.variable("i"), AffineExpr.variable("N")
        poly = Polyhedron.from_constraints(
            space,
            [AffineConstraint.greater_equal(i, 0), AffineConstraint.less_equal(i, n - 1)],
        )
        assert count_integer_points(poly, {"N": 7}) == 7

    def test_fix_dimensions(self):
        poly = _box(["i", "j"], [0, 0], [4, 4])
        fixed = poly.fix_dimensions({"j": 2})
        assert fixed.space.iterators == ("i",)
        assert fixed.contains({"i": 0})

    def test_project_onto_keeps_parameters(self):
        space = Space(("i", "j"), ("N",))
        i, j, n = (AffineExpr.variable(x) for x in ("i", "j", "N"))
        poly = Polyhedron.from_constraints(
            space,
            [
                AffineConstraint.greater_equal(i, 0),
                AffineConstraint.less_equal(i, n - 1),
                AffineConstraint.greater_equal(j, 0),
                AffineConstraint.less_equal(j, i),
            ],
        )
        projected = poly.project_onto(["j"])
        assert projected.space.parameters == ("N",)
        assert "i" not in projected.space.iterators

    def test_rename_iterators(self):
        poly = _box(["i"], [0], [3]).rename_iterators({"i": "x"})
        assert poly.space.iterators == ("x",)
        assert poly.contains({"x": 2})

    def test_dimension_bounds(self):
        poly = _box(["i"], [1], [7])
        lower, upper = poly.dimension_bounds("i")
        assert lower[0].constant == 1
        assert upper[0].constant == 7

    def test_intersect_space_mismatch(self):
        with pytest.raises(ValueError):
            _box(["i"], [0], [1]).intersect(_box(["j"], [0], [1]))

    def test_unknown_dimension_rejected(self):
        space = Space(("i",), ())
        with pytest.raises(ValueError):
            Polyhedron(space, (AffineConstraint.greater_equal(AffineExpr.variable("j"), 0),))


class TestSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Space(("i", "i"), ())

    def test_reserved_constant_key(self):
        with pytest.raises(ValueError):
            Space((CONSTANT_KEY,), ())

    def test_product_renaming(self):
        left = Space(("i",), ("N",))
        right = Space(("i",), ("N",))
        product = left.product(right, {"i": "i2"})
        assert product.iterators == ("i", "i2")

    def test_index_and_membership(self):
        space = Space(("i", "j"), ("N",))
        assert "N" in space and space.is_parameter("N")
        assert space.index("j") == 1


class TestFarkas:
    def test_interval_nonnegativity(self):
        # f(i) = a*i + b >= 0 on [0, 9]  <=>  b >= 0 and 9a + b >= 0.
        poly = _box(["i"], [0], [9])
        result = farkas_nonnegative(poly, {"i": {"a": Fraction(1)}}, {"b": Fraction(1)})
        rows = result.as_rows()
        normalized = {frozenset(coeffs.items()) for coeffs, _, _ in rows}
        assert frozenset({"b": Fraction(1)}.items()) in normalized
        assert any({"a", "b"} == set(coeffs) for coeffs, _, _ in rows)

    def test_constant_template_only(self):
        poly = _box(["i"], [0], [3])
        result = farkas_nonnegative(poly, {}, {"c": Fraction(1)})
        rows = result.as_rows()
        # c >= 0 is the only requirement.
        assert any(set(coeffs) == {"c"} for coeffs, _, _ in rows)

    def test_parametric_polyhedron(self):
        space = Space(("i",), ("N",))
        i, n = AffineExpr.variable("i"), AffineExpr.variable("N")
        poly = Polyhedron.from_constraints(
            space,
            [
                AffineConstraint.greater_equal(i, 0),
                AffineConstraint.less_equal(i, n - 1),
                AffineConstraint.greater_equal(n, 1),
            ],
        )
        result = farkas_nonnegative(
            poly, {"i": {"a": Fraction(1)}, "N": {"u": Fraction(1)}}, {"w": Fraction(1)}
        )
        assert result.constraints  # a non-trivial linearisation exists

    def test_farkas_solutions_are_actually_nonnegative(self):
        poly = _box(["i"], [0, ], [5])
        result = farkas_nonnegative(poly, {"i": {"a": Fraction(1)}}, {"b": Fraction(1)})
        # Pick a = 1, b = 0: f(i) = i which is >= 0 on [0,5]; must satisfy all rows.
        for coeffs, sense, rhs in result.as_rows():
            value = coeffs.get("a", Fraction(0)) * 1 + coeffs.get("b", Fraction(0)) * 0
            assert value >= rhs if sense == ">=" else value == rhs
        # a = -1, b = 0: f(i) = -i is negative on (0,5]; must violate some row.
        violated = False
        for coeffs, sense, rhs in result.as_rows():
            value = coeffs.get("a", Fraction(0)) * -1
            if sense == ">=" and value < rhs:
                violated = True
            if sense == "==" and value != rhs:
                violated = True
        assert violated
