"""Unit tests for dependence analysis and the dependence graph."""

from __future__ import annotations

import pytest

from repro.deps import (
    Dependence,
    DependenceAnalysis,
    DependenceGraph,
    DependenceKind,
    compute_dependences,
)
from repro.polyhedra import AffineExpr


class TestDependenceAnalysis:
    def test_listing1_has_no_dependences(self, listing1_scop):
        assert compute_dependences(listing1_scop) == []

    def test_gemm_dependences(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        assert deps  # init -> update and update -> update on C
        pairs = {(d.source, d.target) for d in deps}
        assert ("S0", "S1") in pairs
        assert ("S1", "S1") in pairs
        # No dependence can flow back from the update to the initialisation.
        assert ("S1", "S0") not in pairs

    def test_dependence_kinds(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        kinds = {d.kind for d in deps}
        assert DependenceKind.FLOW in kinds
        assert DependenceKind.OUTPUT in kinds
        assert DependenceKind.ANTI in kinds

    def test_kind_filtering(self, gemm_scop):
        flow_only = DependenceAnalysis(include_anti=False, include_output=False).run(gemm_scop)
        assert flow_only
        assert all(d.kind is DependenceKind.FLOW for d in flow_only)

    def test_jacobi_dependences_cross_time_steps(self, jacobi_scop):
        deps = compute_dependences(jacobi_scop)
        pairs = {(d.source, d.target) for d in deps}
        assert ("S0", "S1") in pairs  # B produced then consumed in the same step
        assert ("S1", "S0") in pairs  # A written at step t read at step t+1

    def test_sequence_producer_consumer_chain(self, sequence_scop):
        deps = compute_dependences(sequence_scop)
        pairs = {(d.source, d.target) for d in deps}
        assert ("S0", "S1") in pairs and ("S1", "S2") in pairs
        assert ("S0", "S2") not in pairs  # no shared array between S0 and S2

    def test_dependence_polyhedra_are_nonempty(self, gemm_scop):
        for dependence in compute_dependences(gemm_scop):
            assert not dependence.polyhedron.is_empty()

    def test_depths_are_recorded(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        assert all(d.depth >= 0 for d in deps)
        self_deps = [d for d in deps if d.is_self_dependence]
        assert self_deps and all(d.source == "S1" for d in self_deps)


class TestDependenceHelpers:
    def test_strong_and_weak_satisfaction(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        self_dep = next(d for d in deps if d.is_self_dependence)
        k_row = AffineExpr.variable("k")
        zero = AffineExpr.const(0)
        # The k loop strongly satisfies the C self-dependence (distance 1).
        assert self_dep.is_strongly_satisfied_by(k_row, k_row)
        assert self_dep.is_weakly_satisfied_by(k_row, k_row)
        # A constant dimension leaves the distance at zero.
        assert self_dep.has_zero_distance_under(zero, zero)
        assert not self_dep.is_strongly_satisfied_by(zero, zero)

    def test_identifier_is_unique_per_dependence(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        identifiers = [d.identifier() for d in deps]
        assert len(identifiers) == len(set(identifiers))

    def test_kind_of_requires_a_write(self):
        from repro.model import ArrayAccess

        with pytest.raises(ValueError):
            DependenceKind.of(ArrayAccess.read("A", []), ArrayAccess.read("A", []))


class TestDependenceGraph:
    def test_scc_of_chain(self, sequence_scop):
        deps = compute_dependences(sequence_scop)
        graph = DependenceGraph.from_dependences(["S0", "S1", "S2"], deps)
        components = graph.condensation_order()
        assert [c[0] for c in components] == ["S0", "S1", "S2"]

    def test_scc_groups_cycles(self):
        class FakeDep:
            def __init__(self, source, target):
                self.source = source
                self.target = target

        graph = DependenceGraph(["A", "B", "C"])
        graph.edges = [
            ("A", "B", FakeDep("A", "B")),
            ("B", "A", FakeDep("B", "A")),
            ("B", "C", FakeDep("B", "C")),
        ]
        components = graph.condensation_order()
        assert components == [["A", "B"], ["C"]]

    def test_group_order_legality(self, sequence_scop):
        deps = compute_dependences(sequence_scop)
        graph = DependenceGraph.from_dependences(["S0", "S1", "S2"], deps)
        assert graph.group_order_is_legal([["S0"], ["S1"], ["S2"]])
        assert not graph.group_order_is_legal([["S2"], ["S1"], ["S0"]])
        assert graph.group_order_is_legal([["S0", "S1", "S2"]])

    def test_successors_and_edges_between(self, sequence_scop):
        deps = compute_dependences(sequence_scop)
        graph = DependenceGraph.from_dependences(["S0", "S1", "S2"], deps)
        assert "S1" in graph.successors("S0")
        assert graph.has_edge("S1", "S2")
        assert graph.edges_between({"S0"}, {"S1"})
        assert not graph.edges_between({"S2"}, {"S0"})
