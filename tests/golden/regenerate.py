"""Regenerate the golden schedule corpus (``tests/golden/schedules.json``).

Usage::

    PYTHONPATH=src python tests/golden/regenerate.py

Run it only when a schedule or search-path change is *intended* (a new
engine search order, a changed cost-function default); commit the JSON diff
together with the change so the review sees exactly what moved.  The pytest
in ``tests/test_golden_schedules.py`` fails on any drift against this file.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(TESTS_DIR))
sys.path.insert(0, str(TESTS_DIR.parent / "src"))

from test_golden_schedules import GOLDEN_PATH, capture_corpus  # noqa: E402


def main() -> int:
    corpus = capture_corpus()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(corpus, indent=1, sort_keys=True) + "\n")
    cases = len(corpus)
    solves = sum(len(case["node_keys"]) for case in corpus.values())
    print(f"wrote {GOLDEN_PATH}: {cases} cases, {solves} ILP node keys")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
