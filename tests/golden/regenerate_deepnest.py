"""Regenerate the deep-nest golden corpus (``tests/golden/deepnest_schedules.json``).

Usage::

    PYTHONPATH=src python tests/golden/regenerate_deepnest.py

Run it only when a schedule change on the deep-nest kernels is *intended*;
commit the JSON diff together with the change.  The pytest in
``tests/test_sparse_core.py`` fails on any drift against this file.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(TESTS_DIR))
sys.path.insert(0, str(TESTS_DIR.parent / "src"))

from test_sparse_core import DEEPNEST_GOLDEN_PATH, capture_deepnest_corpus  # noqa: E402


def main() -> int:
    corpus = capture_deepnest_corpus()
    DEEPNEST_GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    DEEPNEST_GOLDEN_PATH.write_text(json.dumps(corpus, indent=1, sort_keys=True) + "\n")
    print(f"wrote {DEEPNEST_GOLDEN_PATH}: {len(corpus)} cases")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
