"""Unit and property tests for the exact linear algebra substrate."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    RationalMatrix,
    as_fraction,
    common_denominator,
    determinant,
    gcd_many,
    hermite_normal_form,
    is_integral,
    is_linearly_independent,
    is_unimodular,
    lcm,
    lcm_many,
    normalize_integer_row,
    orthogonal_complement,
    orthogonal_complement_rows,
    scale_to_integers,
    unimodular_completion,
)


class TestRationalHelpers:
    def test_as_fraction_idempotent(self):
        assert as_fraction(Fraction(3, 4)) == Fraction(3, 4)
        assert as_fraction(5) == Fraction(5)

    def test_lcm_basic(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 7) == 7
        assert lcm(7, 0) == 7

    def test_lcm_many(self):
        assert lcm_many([2, 3, 4]) == 12
        assert lcm_many([]) == 1

    def test_gcd_many(self):
        assert gcd_many([12, 18, 24]) == 6
        assert gcd_many([]) == 0
        assert gcd_many([-4, 6]) == 2

    def test_common_denominator(self):
        assert common_denominator([Fraction(1, 2), Fraction(1, 3)]) == 6
        assert common_denominator([1, 2]) == 1

    def test_scale_to_integers_preserves_direction(self):
        scaled = scale_to_integers([Fraction(1, 2), Fraction(-1, 3)])
        assert scaled == [3, -2]

    def test_normalize_integer_row(self):
        assert normalize_integer_row([4, 8, -12]) == [1, 2, -3]
        assert normalize_integer_row([0, 0]) == [0, 0]

    def test_is_integral(self):
        assert is_integral(Fraction(4, 2))
        assert not is_integral(Fraction(1, 3))


class TestRationalMatrix:
    def test_identity_and_shape(self):
        identity = RationalMatrix.identity(3)
        assert identity.shape == (3, 3)
        assert identity[0, 0] == 1 and identity[0, 1] == 0

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2], [3]])

    def test_addition_and_subtraction(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        b = RationalMatrix([[4, 3], [2, 1]])
        assert (a + b) == RationalMatrix([[5, 5], [5, 5]])
        assert (a - a) == RationalMatrix.zeros(2, 2)

    def test_matmul(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        identity = RationalMatrix.identity(2)
        assert a @ identity == a
        assert (a @ a) == RationalMatrix([[7, 10], [15, 22]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2]]) @ RationalMatrix([[1, 2]])

    def test_multiply_vector(self):
        a = RationalMatrix([[1, 2], [3, 4]])
        assert a.multiply_vector([1, 1]) == [Fraction(3), Fraction(7)]

    def test_transpose(self):
        a = RationalMatrix([[1, 2, 3], [4, 5, 6]])
        assert a.transpose().shape == (3, 2)
        assert a.transpose()[2, 1] == 6

    def test_rank_and_rref(self):
        a = RationalMatrix([[1, 2], [2, 4]])
        assert a.rank() == 1
        reduced, pivots = a.rref()
        assert pivots == [0]
        assert reduced.row(1) == [Fraction(0), Fraction(0)]

    def test_nullspace(self):
        a = RationalMatrix([[1, 2]])
        basis = a.nullspace()
        assert len(basis) == 1
        vector = basis[0]
        assert vector[0] * 1 + vector[1] * 2 == 0

    def test_inverse_roundtrip(self):
        a = RationalMatrix([[2, 1], [1, 1]])
        assert a @ a.inverse() == RationalMatrix.identity(2)

    def test_inverse_singular(self):
        with pytest.raises(ValueError):
            RationalMatrix([[1, 2], [2, 4]]).inverse()

    def test_solve_consistent(self):
        a = RationalMatrix([[1, 1], [1, -1]])
        solution = a.solve([3, 1])
        assert solution == [Fraction(2), Fraction(1)]

    def test_solve_inconsistent(self):
        a = RationalMatrix([[1, 1], [1, 1]])
        assert a.solve([1, 2]) is None

    def test_integer_rows(self):
        a = RationalMatrix([[Fraction(1, 2), Fraction(1, 3)]])
        assert a.integer_rows() == [[3, 2]]

    @given(
        st.lists(
            st.lists(st.integers(-5, 5), min_size=3, max_size=3), min_size=3, max_size=3
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_inverse_property(self, rows):
        matrix = RationalMatrix(rows)
        if matrix.rank() < 3:
            return
        assert matrix @ matrix.inverse() == RationalMatrix.identity(3)

    @given(
        st.lists(
            st.lists(st.integers(-4, 4), min_size=4, max_size=4), min_size=2, max_size=3
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_nullspace_property(self, rows):
        matrix = RationalMatrix(rows)
        for vector in matrix.nullspace():
            assert all(value == 0 for value in matrix.multiply_vector(vector))


class TestOrthogonalComplement:
    def test_empty_rows_is_identity(self):
        assert orthogonal_complement([], 3) == RationalMatrix.identity(3)

    def test_full_span_is_zero(self):
        complement = orthogonal_complement([[1, 0], [0, 1]], 2)
        assert complement == RationalMatrix.zeros(2, 2)

    def test_rows_are_orthogonal_to_span(self):
        rows = [[1, 1, 0]]
        complement_rows = orthogonal_complement_rows(rows, 3)
        for row in complement_rows:
            assert sum(a * b for a, b in zip(row, [1, 1, 0])) == 0

    def test_complement_rows_integer(self):
        rows = orthogonal_complement_rows([[2, 1]], 2)
        for row in rows:
            assert all(isinstance(value, int) for value in row)

    def test_is_linearly_independent(self):
        assert is_linearly_independent([[1, 0]], [0, 1])
        assert not is_linearly_independent([[1, 0]], [2, 0])
        assert not is_linearly_independent([], [0, 0])
        assert is_linearly_independent([], [1, 2])

    def test_dependent_input_rows_handled(self):
        complement = orthogonal_complement([[1, 0], [2, 0]], 2)
        # Span is the x axis; the complement projects onto the y axis.
        assert complement.multiply_vector([5, 7]) == [Fraction(0), Fraction(7)]


class TestHermite:
    def test_determinant_identity(self):
        assert determinant([[1, 0], [0, 1]]) == 1

    def test_determinant_known(self):
        assert determinant([[2, 3], [1, 4]]) == 5
        assert determinant([[1, 2], [2, 4]]) == 0

    def test_determinant_requires_square(self):
        with pytest.raises(ValueError):
            determinant([[1, 2, 3], [4, 5, 6]])

    def test_is_unimodular(self):
        assert is_unimodular([[1, 1], [0, 1]])
        assert not is_unimodular([[2, 0], [0, 1]])

    def test_hermite_normal_form_reconstruction(self):
        matrix = [[4, 2], [2, 3]]
        h, u = hermite_normal_form(matrix)
        assert is_unimodular(u)
        # H = A @ U
        reconstructed = [
            [
                sum(matrix[i][k] * u[k][j] for k in range(2))
                for j in range(2)
            ]
            for i in range(2)
        ]
        assert reconstructed == h

    def test_unimodular_completion(self):
        completed = unimodular_completion([[1, 1, 0]], 3)
        assert len(completed) == 3
        assert determinant(completed) != 0
