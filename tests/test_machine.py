"""Tests for the cache simulator, machine models and the cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deps import compute_dependences
from repro.machine import (
    CacheHierarchy,
    CacheLevel,
    CacheLevelSpec,
    CostModel,
    MemoryTraceCollector,
    amd_epyc_7452,
    ascend_910,
    estimate_cycles,
    intel_xeon_e5_2683,
    intel_xeon_silver_4215,
    machine_by_name,
)
from repro.scheduler import PolyTOPSScheduler, npu_vectorize_style, pluto_style


class TestCacheLevel:
    def test_repeated_access_hits(self):
        level = CacheLevel(CacheLevelSpec("L1", 1024, 64, 2, 1))
        assert not level.access(0)
        assert level.access(0)
        assert level.access(32)  # same 64-byte line
        assert level.hits == 2 and level.misses == 1

    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 sets x 1 way, 64-byte lines.
        level = CacheLevel(CacheLevelSpec("L1", 128, 64, 1, 1))
        level.access(0)        # set 0
        level.access(128)      # set 0, evicts line 0
        assert not level.access(0)  # miss again

    def test_associativity_retains_ways(self):
        level = CacheLevel(CacheLevelSpec("L1", 256, 64, 2, 1))
        level.access(0)
        level.access(128)      # same set, second way
        assert level.access(0)
        assert level.access(128)

    def test_miss_ratio(self):
        level = CacheLevel(CacheLevelSpec("L1", 1024, 64, 4, 1))
        level.access(0)
        level.access(0)
        assert level.miss_ratio == pytest.approx(0.5)

    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        level = CacheLevel(CacheLevelSpec("L1", 512, 64, 2, 1))
        for address in addresses:
            level.access(address)
        assert level.hits + level.misses == len(addresses)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=50))
    @settings(max_examples=20, deadline=None)
    def test_single_line_never_misses_twice(self, addresses):
        level = CacheLevel(CacheLevelSpec("L1", 512, 64, 2, 1))
        for address in addresses:
            level.access(address)
        assert level.misses == 1  # all addresses map to line 0


class TestCacheHierarchy:
    def test_memory_fallthrough(self):
        hierarchy = CacheHierarchy([CacheLevelSpec("L1", 128, 64, 1, 2)], 100)
        outcome = hierarchy.access(0)
        assert outcome.level is None and outcome.latency_cycles == 100
        outcome = hierarchy.access(0)
        assert outcome.level == "L1" and outcome.latency_cycles == 2

    def test_statistics_and_latency(self):
        hierarchy = CacheHierarchy([CacheLevelSpec("L1", 128, 64, 1, 2)], 100)
        hierarchy.access(0)
        hierarchy.access(0)
        stats = hierarchy.statistics()
        assert stats["L1"]["hits"] == 1 and stats["memory"]["accesses"] == 1
        assert hierarchy.total_latency() == 102

    def test_reset(self):
        hierarchy = CacheHierarchy([CacheLevelSpec("L1", 128, 64, 1, 2)], 100)
        hierarchy.access(0)
        hierarchy.reset_statistics()
        assert hierarchy.total_latency() == 0


class TestMachineModels:
    def test_predefined_machines(self):
        assert amd_epyc_7452().cores == 32
        assert intel_xeon_e5_2683().name == "Intel1"
        assert intel_xeon_silver_4215().cores == 16
        assert ascend_910().requires_explicit_vectorization

    def test_machine_by_name(self):
        assert machine_by_name("amd").name == "AMD"
        assert machine_by_name("ascend910").name == "Ascend910"
        with pytest.raises(KeyError):
            machine_by_name("cray")

    def test_effective_parallelism_caps_at_cores(self):
        machine = intel_xeon_silver_4215()
        assert machine.effective_parallelism(1000) <= machine.cores
        assert machine.effective_parallelism(1) == 1.0


class TestCostModel:
    def test_report_fields(self, gemm_scop):
        report = estimate_cycles(gemm_scop, gemm_scop.original_schedule(), intel_xeon_e5_2683())
        assert report.cycles > 0
        assert report.instances == 1100
        assert report.compute_cycles > 0 and report.memory_cycles > 0
        assert report.kernel == "gemm" and report.machine == "Intel1"

    def test_parallel_schedule_is_faster(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        result = PolyTOPSScheduler(gemm_scop, pluto_style(), dependences=deps).schedule()
        machine = intel_xeon_e5_2683()
        parallel_report = estimate_cycles(gemm_scop, result.schedule, machine)
        sequential_report = estimate_cycles(gemm_scop, gemm_scop.original_schedule(), machine)
        assert parallel_report.cycles < sequential_report.cycles

    def test_npu_rewards_explicit_vectorization(self, gemm_scop):
        deps = compute_dependences(gemm_scop)
        machine = ascend_910()
        plain = PolyTOPSScheduler(gemm_scop, pluto_style(), dependences=deps).schedule()
        vectorized = PolyTOPSScheduler(
            gemm_scop, npu_vectorize_style(), dependences=deps
        ).schedule()
        plain_report = estimate_cycles(gemm_scop, plain.schedule, machine)
        vector_report = estimate_cycles(gemm_scop, vectorized.schedule, machine)
        # Without an explicit vectorisation directive the NPU model never uses
        # its vector unit, so the directive-driven schedule must be cheaper.
        assert any(vector_report.vectorized_statements.values())
        assert not any(plain_report.vectorized_statements.values())
        assert vector_report.cycles < plain_report.cycles

    def test_speedup_over(self, gemm_scop):
        machine = intel_xeon_e5_2683()
        report = estimate_cycles(gemm_scop, gemm_scop.original_schedule(), machine)
        assert report.speedup_over(report) == pytest.approx(1.0)

    def test_trace_collector_counts_accesses(self, gemm_scop):
        machine = intel_xeon_e5_2683()
        hierarchy = machine.hierarchy()
        collector = MemoryTraceCollector(gemm_scop, hierarchy)
        from repro.codegen import run_original

        arrays = gemm_scop.allocate_arrays()
        run_original(gemm_scop, arrays, on_instance=collector)
        # 2 accesses per init instance + 4 per update instance.
        assert collector.accesses == 2 * 100 + 4 * 1000
        assert collector.statement_accesses["S1"] == 4000
        assert 0.0 <= collector.miss_ratio() <= 1.0
