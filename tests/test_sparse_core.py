"""Differential suite for the sparse polyhedral core.

Three layers of defence:

* a **hypothesis differential**: on random constraint systems the sparse
  pruning Fourier–Motzkin core and the retained dense core
  (``REPRO_FM_CORE=dense``) must describe the *same feasible set* — every
  row of one result is implied by the other system, certified by integer
  emptiness checks through the ILP engine.  Because the dense core performs
  no subsumption/Imbert pruning, ``sparse ⊨ dense`` simultaneously proves
  every pruned row redundant;
* a **golden drift check** on the new deep-nest kernels
  (``tests/golden/deepnest_schedules.json``; regenerate with
  ``PYTHONPATH=src python tests/golden/regenerate_deepnest.py`` only for an
  intended change);
* **regression pins**: the incremental dense simplification must only scan
  rows an elimination step touched (the historical full rescan is the bug
  the pin guards against), and the batched emptiness probe context must
  reuse verdicts.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp.problem import ConstraintSense, LinearProblem
from repro.ilp.solver import IlpSolver
from repro.linalg.sparse import SparseRow
from repro.polyhedra.affine import AffineExpr
from repro.polyhedra.constraint import AffineConstraint, ConstraintKind
from repro.polyhedra.emptiness import BatchProbe, find_integer_point
from repro.polyhedra.farkas import farkas_nonnegative
from repro.polyhedra.fourier_motzkin import (
    active_core,
    constraints_to_rows,
    eliminate_columns,
    eliminate_variables,
)
from repro.polyhedra.polyhedron import Polyhedron
from repro.polyhedra.space import Space
from repro.polyhedra.sparse_fm import FM_STATS, SparseSystem
from repro.linalg.varspace import VariableSpace

DEEPNEST_GOLDEN_PATH = Path(__file__).parent / "golden" / "deepnest_schedules.json"

VARIABLES = ("x0", "x1", "x2", "x3", "x4")


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
class _ForcedCore:
    """Context manager pinning REPRO_FM_CORE for the duration of a block."""

    def __init__(self, core: str):
        self.core = core
        self._saved: str | None = None

    def __enter__(self):
        self._saved = os.environ.get("REPRO_FM_CORE")
        os.environ["REPRO_FM_CORE"] = self.core
        return self

    def __exit__(self, *exc):
        if self._saved is None:
            os.environ.pop("REPRO_FM_CORE", None)
        else:
            os.environ["REPRO_FM_CORE"] = self._saved
        return False


def _constraints_from_spec(spec) -> list[AffineConstraint]:
    constraints = []
    for coefficients, constant, is_equality in spec:
        cleaned = {
            name: Fraction(value) for name, value in coefficients.items() if value
        }
        if not cleaned:
            continue
        constraints.append(
            AffineConstraint(
                AffineExpr(cleaned, Fraction(constant)),
                ConstraintKind.EQUALITY if is_equality else ConstraintKind.INEQUALITY,
            )
        )
    return constraints


def _system_with_extra_is_empty(
    constraints: list[AffineConstraint], extra: list[AffineConstraint]
) -> bool:
    """Integer emptiness of ``constraints ∧ extra`` through the ILP engine."""
    names = sorted(
        {
            name
            for constraint in constraints + extra
            for name in constraint.expression.coefficients
        }
    )
    if not names:
        # Constant-only system: decide by inspection (the ILP layer needs at
        # least one variable).
        for constraint in constraints + extra:
            constant = constraint.expression.constant
            satisfied = (constant == 0) if constraint.is_equality else (constant >= 0)
            if not satisfied:
                return True
        return False
    problem = LinearProblem()
    for name in names:
        problem.add_variable(name, lower=None, upper=None, is_integer=True)
    for constraint in constraints + extra:
        problem.add_constraint(
            dict(constraint.expression.coefficients),
            ConstraintSense.EQ if constraint.is_equality else ConstraintSense.GE,
            -constraint.expression.constant,
        )
    return IlpSolver(workers=1).solve(problem) is None


def _implies(system: list[AffineConstraint], row: AffineConstraint) -> bool:
    """True when every integer point of *system* satisfies *row*."""
    expression = row.expression
    negations = [
        AffineConstraint(
            AffineExpr(
                {name: -value for name, value in expression.coefficients.items()},
                -expression.constant - 1,
            ),
            ConstraintKind.INEQUALITY,
        )
    ]
    if row.is_equality:
        negations.append(
            AffineConstraint(
                AffineExpr(dict(expression.coefficients), expression.constant - 1),
                ConstraintKind.INEQUALITY,
            )
        )
    return all(
        _system_with_extra_is_empty(system, [negation]) for negation in negations
    )


def _mutually_imply(
    first: list[AffineConstraint], second: list[AffineConstraint]
) -> bool:
    return all(_implies(first, row) for row in second) and all(
        _implies(second, row) for row in first
    )


# --------------------------------------------------------------------------- #
# Hypothesis differential: sparse FM == dense FM
# --------------------------------------------------------------------------- #
constraint_spec = st.tuples(
    st.dictionaries(
        st.sampled_from(VARIABLES),
        st.integers(min_value=-3, max_value=3),
        min_size=1,
        max_size=4,
    ),
    st.integers(min_value=-5, max_value=5),
    st.booleans(),
)

system_spec = st.lists(constraint_spec, min_size=2, max_size=8)


@settings(max_examples=40, deadline=None)
@given(
    spec=system_spec,
    eliminate=st.lists(st.sampled_from(VARIABLES), min_size=1, max_size=3, unique=True),
)
def test_sparse_elimination_matches_dense(spec, eliminate):
    constraints = _constraints_from_spec(spec)
    with _ForcedCore("sparse"):
        sparse_result = eliminate_variables(constraints, eliminate)
    with _ForcedCore("dense"):
        dense_result = eliminate_variables(constraints, eliminate)
    # Both cores compute the rational shadow of the same projection; their
    # outputs must describe the same set of integer points.  sparse ⊨ dense
    # also certifies that every row the sparse core pruned (duplicates,
    # subsumed rows, Imbert drops) was redundant.
    assert _mutually_imply(sparse_result, dense_result)


@settings(max_examples=25, deadline=None)
@given(
    spec=st.lists(  # pure inequalities: the Fourier–Motzkin fan-out case
        st.tuples(
            st.dictionaries(
                st.sampled_from(VARIABLES),
                st.integers(min_value=-3, max_value=3),
                min_size=2,
                max_size=4,
            ),
            st.integers(min_value=-5, max_value=5),
            st.just(False),
        ),
        min_size=3,
        max_size=9,
    ),
    eliminate=st.lists(st.sampled_from(VARIABLES), min_size=2, max_size=3, unique=True),
)
def test_sparse_elimination_matches_dense_on_inequality_systems(spec, eliminate):
    constraints = _constraints_from_spec(spec)
    with _ForcedCore("sparse"):
        sparse_result = eliminate_variables(constraints, eliminate)
    with _ForcedCore("dense"):
        dense_result = eliminate_variables(constraints, eliminate)
    assert _mutually_imply(sparse_result, dense_result)


@settings(max_examples=20, deadline=None)
@given(
    spec=st.lists(constraint_spec, min_size=1, max_size=5),
    data=st.data(),
)
def test_sparse_farkas_matches_dense(spec, data):
    constraints = _constraints_from_spec(spec)
    space = Space(("i", "j"), ("N",))
    renames = dict(zip(VARIABLES, ("i", "j", "N", "i", "j")))
    renamed = []
    for constraint in constraints:
        coefficients: dict[str, Fraction] = {}
        for name, value in constraint.expression.coefficients.items():
            target = renames[name]
            coefficients[target] = coefficients.get(target, Fraction(0)) + value
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        renamed.append(
            AffineConstraint(
                AffineExpr(coefficients, constraint.expression.constant),
                constraint.kind,
            )
        )
    polyhedron = Polyhedron(space, tuple(renamed))
    templates = {
        "i": {"a": Fraction(data.draw(st.integers(-2, 2), label="ti"))},
        "j": {"a": Fraction(1), "b": Fraction(data.draw(st.integers(-2, 2), label="tj"))},
    }
    constant = {"c": Fraction(1)}
    with _ForcedCore("sparse"):
        sparse_rows = farkas_nonnegative(polyhedron, templates, constant).as_rows()
    with _ForcedCore("dense"):
        dense_rows = farkas_nonnegative(polyhedron, templates, constant).as_rows()

    def as_constraints(rows):
        out = []
        for coefficients, sense, rhs in rows:
            out.append(
                AffineConstraint(
                    AffineExpr(dict(coefficients), -rhs),
                    ConstraintKind.EQUALITY if sense == "==" else ConstraintKind.INEQUALITY,
                )
            )
        return out

    assert _mutually_imply(as_constraints(sparse_rows), as_constraints(dense_rows))


# --------------------------------------------------------------------------- #
# SparseRow / SparseSystem units
# --------------------------------------------------------------------------- #
class TestSparseRow:
    def test_dense_roundtrip_reduces_gcd(self):
        row = SparseRow.from_dense([4, 0, -6, 10])
        assert row.terms == ((0, 2), (2, -3))
        assert row.constant == 5
        assert row.to_dense(3) == [2, 0, -3, 5]

    def test_combine_merges_and_cancels(self):
        first = SparseRow.from_pairs([(0, 1), (2, 3)], 1)
        second = SparseRow.from_pairs([(0, -1), (1, 2)], 1)
        combined = SparseRow.combine(1, first, 1, second)
        assert combined.terms == ((1, 2), (2, 3))
        assert combined.constant == 2

    def test_scalar_multiples_are_identical(self):
        assert SparseRow.from_dense([2, 4, 6]) == SparseRow.from_dense([1, 2, 3])

    def test_rational_terms_clear_denominators(self):
        row = SparseRow.from_rational_terms({0: Fraction(1, 2), 1: Fraction(1, 3)}, 1)
        assert row.terms == ((0, 3), (1, 2))
        assert row.constant == 6


class TestSparseSystemPruning:
    def test_subsumed_inequality_is_dropped(self):
        system = SparseSystem.from_rows(
            [
                SparseRow.from_pairs([(0, 1)], 0),  # x >= 0 (stronger)
                SparseRow.from_pairs([(0, 1)], 5),  # x >= -5 (weaker)
            ],
            [False, False],
        )
        live = system.rows()
        assert len(live) == 1
        assert live[0][0].constant == 0

    def test_stronger_late_arrival_replaces_weaker(self):
        system = SparseSystem.from_rows(
            [
                SparseRow.from_pairs([(0, 1)], 5),
                SparseRow.from_pairs([(0, 1)], 0),
            ],
            [False, False],
        )
        live = system.rows()
        assert len(live) == 1
        assert live[0][0].constant == 0

    def test_duplicate_equalities_collapse_either_sign(self):
        system = SparseSystem.from_rows(
            [
                SparseRow.from_pairs([(0, 1), (1, -1)], 0),
                SparseRow.from_pairs([(0, -1), (1, 1)], 0),
            ],
            [True, True],
        )
        assert len(system.rows()) == 1

    def test_imbert_prunes_on_fanout_projection(self):
        # A dense octagon-style system in 3 variables: eliminating two of
        # them fans out enough combinations that Imbert's bound must fire.
        before = FM_STATS.as_dict()
        rows = []
        values = [1, -1, 2, -2, 3, -3]
        for a in values:
            for b in values:
                rows.append(SparseRow.from_pairs([(0, a), (1, b), (2, 1)], 7))
                rows.append(SparseRow.from_pairs([(0, b), (1, a), (2, -1)], 9))
        system = SparseSystem.from_rows(rows, [False] * len(rows))
        system.eliminate_columns([0, 1])
        delta = FM_STATS.delta_since(before)
        assert delta["fm_rows_pruned_imbert"] > 0


# --------------------------------------------------------------------------- #
# Incremental simplification (satellite fix regression pin)
# --------------------------------------------------------------------------- #
def _box_rows(n_vars: int, width: int) -> tuple[list[list[int]], list[bool]]:
    constraints = []
    names = [f"x{i}" for i in range(n_vars)]
    for index, name in enumerate(names):
        constraints.append(
            AffineConstraint(
                AffineExpr({name: Fraction(1)}, Fraction(0)), ConstraintKind.INEQUALITY
            )
        )
        constraints.append(
            AffineConstraint(
                AffineExpr({name: Fraction(-1)}, Fraction(width + index)),
                ConstraintKind.INEQUALITY,
            )
        )
    space = VariableSpace()
    return constraints_to_rows(constraints, space)


def test_dense_simplify_is_incremental_over_touched_rows():
    """Eliminating k columns must not re-scan the rows a step left untouched.

    With 8 box variables (16 rows), each eliminated column touches its 2
    bound rows and produces 1 combination (a trivially-true constant row,
    dropped on sight).  The historical implementation re-scanned every
    surviving row after every step (15 + 13 + 11 = 39 scans here); the
    incremental path scans each row once on first sight (15 at the first
    step) plus each newly combined row once (1 per later step).
    """
    rows, kinds = _box_rows(8, 10)
    before = FM_STATS.as_dict()
    out_rows, out_kinds = eliminate_columns(rows, kinds, [0, 1, 2])
    delta = FM_STATS.delta_since(before)
    assert delta["fm_simplify_row_scans"] == 17, delta
    assert len(out_rows) == 10  # the bounds of the 5 surviving variables
    assert all(not kind for kind in out_kinds)


def test_dense_incremental_matches_one_shot_simplify():
    rows, kinds = _box_rows(5, 4)
    incremental = eliminate_columns(
        [list(row) for row in rows], list(kinds), [0, 2]
    )
    # The one-column public path simplifies from scratch every call; chaining
    # it must agree with the incremental multi-column path.
    from repro.polyhedra.fourier_motzkin import eliminate_column

    step_rows, step_kinds = eliminate_column(
        [list(row) for row in rows], list(kinds), 0
    )
    step_rows, step_kinds = eliminate_column(step_rows, step_kinds, 2)
    assert incremental == (step_rows, step_kinds)


# --------------------------------------------------------------------------- #
# Batched emptiness probes
# --------------------------------------------------------------------------- #
class TestBatchProbe:
    def _box(self, low: int, high: int) -> Polyhedron:
        space = Space(("i",), ())
        return Polyhedron.from_constraints(
            space,
            [
                AffineConstraint(
                    AffineExpr({"i": Fraction(1)}, Fraction(-low)),
                    ConstraintKind.INEQUALITY,
                ),
                AffineConstraint(
                    AffineExpr({"i": Fraction(-1)}, Fraction(high)),
                    ConstraintKind.INEQUALITY,
                ),
            ],
        )

    def test_matches_module_level_probe(self):
        probe = BatchProbe()
        feasible = self._box(0, 5)
        empty = self._box(7, 3)
        assert probe.find_integer_point(feasible) == find_integer_point(feasible)
        assert probe.is_integer_empty(empty) == (find_integer_point(empty) is None)

    def test_repeated_polyhedra_reuse_verdicts(self):
        probe = BatchProbe()
        box = self._box(0, 5)
        first = probe.find_integer_point(box)
        second = probe.find_integer_point(self._box(0, 5))
        assert first == second
        statistics = probe.statistics()
        assert statistics["emptiness_probes"] == 2
        assert statistics["emptiness_reuse_hits"] == 1
        assert statistics["emptiness_engine_probes"] == 1

    def test_trivial_contradictions_skip_the_engine(self):
        probe = BatchProbe()
        space = Space(("i",), ())
        contradiction = Polyhedron(
            space,
            (
                AffineConstraint(
                    AffineExpr({}, Fraction(-1)), ConstraintKind.INEQUALITY
                ),
            ),
        )
        assert probe.is_integer_empty(contradiction)
        assert probe.statistics()["emptiness_trivial_hits"] == 1
        assert probe.statistics()["emptiness_engine_probes"] == 0


def test_dependence_analysis_batches_probes():
    from repro.deps.analysis import DependenceAnalysis
    from repro.suites.polybench import build_kernel

    analysis = DependenceAnalysis()
    dependences = analysis.run(build_kernel("jacobi-1d"))
    assert dependences
    statistics = analysis.last_probe_statistics
    assert statistics["emptiness_probes"] > 0
    # The whole SCoP went through one batched context, and the per-depth
    # splitting produces repeated candidate polyhedra the cache answers.
    assert (
        statistics["emptiness_engine_probes"] + statistics["emptiness_trivial_hits"]
        <= statistics["emptiness_probes"]
    )


# --------------------------------------------------------------------------- #
# Core selection
# --------------------------------------------------------------------------- #
def test_active_core_default_and_override():
    with _ForcedCore("sparse"):
        assert active_core() == "sparse"
    with _ForcedCore("dense"):
        assert active_core() == "dense"
    saved = os.environ.pop("REPRO_FM_CORE", None)
    try:
        assert active_core() == "sparse"
        os.environ["REPRO_FM_CORE"] = "typo"
        with pytest.raises(ValueError):
            active_core()
    finally:
        if saved is None:
            os.environ.pop("REPRO_FM_CORE", None)
        else:
            os.environ["REPRO_FM_CORE"] = saved


# --------------------------------------------------------------------------- #
# Golden drift check on the deep-nest kernels
# --------------------------------------------------------------------------- #
def capture_deepnest_corpus() -> dict:
    """Schedule rows of the deep-nest kernels under the paper's strategies."""
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.strategies import isl_style, pluto_style
    from repro.suites.deepnest import build_deepnest

    cases = {
        "heat-4d": (pluto_style(), isl_style()),
        "tc-4d": (pluto_style(), isl_style()),
        "tc-5d": (pluto_style(), isl_style()),
        "tc-6d": (pluto_style(), isl_style()),
        "sumred-4d": (pluto_style(),),
        "jacobi-4d": (pluto_style(),),
        "polymage-deep": (pluto_style(), isl_style()),
    }
    corpus: dict[str, dict] = {}
    for kernel, configs in cases.items():
        for config in configs:
            result = PolyTOPSScheduler(build_deepnest(kernel), config).schedule()
            corpus[f"{kernel}/{config.name}"] = {
                "fallback": result.fallback_to_original,
                "statements": {
                    name: [str(row) for row in statement.rows]
                    for name, statement in result.schedule.statements.items()
                },
            }
    return corpus


def test_deepnest_schedules_match_golden_corpus():
    assert DEEPNEST_GOLDEN_PATH.exists(), (
        f"missing golden corpus at {DEEPNEST_GOLDEN_PATH}; generate it with "
        "`PYTHONPATH=src python tests/golden/regenerate_deepnest.py`"
    )
    golden = json.loads(DEEPNEST_GOLDEN_PATH.read_text())
    current = capture_deepnest_corpus()
    assert sorted(current) == sorted(golden), "deep-nest golden case list drifted"
    for case, expected in golden.items():
        assert current[case] == expected, (
            f"schedule drift on {case}: if intended, regenerate with "
            "`PYTHONPATH=src python tests/golden/regenerate_deepnest.py` and "
            "review the diff"
        )
