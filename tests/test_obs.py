"""Tests of the observability layer: tracer, metrics, exporters, wiring.

Covers span nesting and counter attachment, the guaranteed-no-op disabled
path, thread safety of one tracer under ``compile_many(parallel=4)``, the
Chrome-trace schema round trip (write → load → identical records), the hard
bit-identity contracts (schedules unchanged tracing on/off; the
``scheduler.run`` span carries counters exactly equal to
``CompilationResult.solver_statistics``), the per-context Fourier–Motzkin
statistics fix (concurrent compiles no longer interleave increments in a
process-global), the metrics registry with its Prometheus rendering, and the
service front door (``/v1/metrics``, capability checks, the opt-in access
log, per-request trace files).
"""

from __future__ import annotations

import importlib.util
import json
import threading
from pathlib import Path

import pytest

_spec = importlib.util.spec_from_file_location(
    "_obs_test_kernels", Path(__file__).with_name("conftest.py")
)
_kernels = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_kernels)
build_gemm = _kernels.build_gemm
build_jacobi_1d = _kernels.build_jacobi_1d
build_listing1 = _kernels.build_listing1

from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    activate,
    active_tracer,
    build_tree,
    load_chrome_trace,
    summarize,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.__main__ import main as obs_main
from repro.pipeline import CompilationJob, Session
from repro.service import CompilationServer, ServiceAuth, ServiceClient, ServiceClientError


# --------------------------------------------------------------------------- #
# Tracer core
# --------------------------------------------------------------------------- #
class TestTracer:
    def test_span_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer", category="t") as outer:
            with tracer.span("inner", category="t") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        records = {record.name: record for record in tracer.records}
        assert records["outer"].parent_id is None
        assert records["inner"].parent_id == records["outer"].span_id
        assert records["inner"].start_ns >= records["outer"].start_ns
        assert records["inner"].duration_ns <= records["outer"].duration_ns

    def test_counter_attachment(self):
        tracer = Tracer()
        with tracer.span("work", category="t", size=3) as span:
            span.add("items")
            span.add("items", 4)
            span.set("flag", True)
            span.update({"pivots": 17})
        (record,) = tracer.records
        assert record.counters == {"size": 3, "items": 5, "flag": True, "pivots": 17}

    def test_records_are_immutable_snapshots(self):
        tracer = Tracer()
        with tracer.span("a", category="t"):
            pass
        records = tracer.records
        tracer.clear()
        assert len(records) == 1 and tracer.records == []

    def test_disabled_tracer_is_a_no_op(self):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.span("anything", category="t", extra=1)
        with span as entered:
            entered.add("x")
            entered.set("y", 2)
        assert NULL_TRACER.records == []
        # The null span is one shared singleton: nothing is allocated per call.
        assert NULL_TRACER.span("other") is span

    def test_activation_is_scoped(self):
        tracer = Tracer()
        assert active_tracer() is NULL_TRACER
        with activate(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is NULL_TRACER

    def test_thread_safety_of_one_tracer(self):
        tracer = Tracer()

        def worker(index: int) -> None:
            for _ in range(50):
                with tracer.span("outer", category="t", worker=index):
                    with tracer.span("inner", category="t", worker=index):
                        pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.records
        assert len(records) == 4 * 50 * 2
        by_id = {record.span_id: record for record in records}
        for record in records:
            if record.name == "inner":
                parent = by_id[record.parent_id]
                # Nesting is per thread: a span's parent lives on its thread.
                assert parent.name == "outer"
                assert parent.thread_id == record.thread_id
                assert parent.counters["worker"] == record.counters["worker"]


# --------------------------------------------------------------------------- #
# Chrome-trace export
# --------------------------------------------------------------------------- #
class TestChromeTrace:
    def _traced_tracer(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("outer", category="t", pivots=3):
            with tracer.span("inner", category="t"):
                pass
        return tracer

    def test_document_schema(self):
        document = to_chrome_trace(self._traced_tracer())
        assert set(document) == {"traceEvents", "displayTimeUnit"}
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for event in complete:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
        assert metadata and all(e["name"] == "thread_name" for e in metadata)

    def test_round_trip_preserves_records(self, tmp_path):
        tracer = self._traced_tracer()
        path = tmp_path / "trace.json"
        write_chrome_trace(tracer, path)
        loaded = load_chrome_trace(path)
        originals = sorted(tracer.records, key=lambda r: r.span_id)
        assert len(loaded) == len(originals)
        for original, recovered in zip(originals, loaded):
            assert recovered.name == original.name
            assert recovered.category == original.category
            assert recovered.span_id == original.span_id
            assert recovered.parent_id == original.parent_id
            assert recovered.counters == original.counters
            # Timestamps survive at the export's microsecond granularity.
            assert abs(recovered.start_ns - original.start_ns) < 1000
            assert abs(recovered.duration_ns - original.duration_ns) < 2000

    def test_summaries_and_tree(self):
        tracer = self._traced_tracer()
        (root,) = build_tree(tracer.records)
        assert root.record.name == "outer" and len(root.children) == 1
        summary = summarize(tracer.records)
        assert summary["outer"]["count"] == 1
        assert summary["outer"]["counters"] == {"pivots": 3}
        assert summary["outer"]["self_ns"] + summary["inner"]["wall_ns"] == summary[
            "outer"
        ]["wall_ns"]

    def test_report_cli(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._traced_tracer(), path)
        assert obs_main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out


# --------------------------------------------------------------------------- #
# Pipeline integration: the hard bit-identity contracts
# --------------------------------------------------------------------------- #
class TestPipelineTracing:
    def test_trace_covers_every_layer(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        session.compile(build_gemm(8, 8, 8))
        names = {record.name for record in tracer.records}
        assert {
            "pipeline.compile",
            "stage.schedule",
            "scheduler.run",
            "scheduler.dimension",
            "ilp.solve",
            "fm.farkas",
        } <= names

    def test_run_span_counters_equal_solver_statistics(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        result = session.compile(build_gemm(8, 8, 8))
        (run,) = [r for r in tracer.records if r.name == "scheduler.run"]
        assert run.counters["kernel"] == "gemm"
        counters = {k: v for k, v in run.counters.items() if k != "kernel"}
        assert counters == result.solver_statistics

    def test_ilp_spans_sum_to_engine_totals(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        result = session.compile(build_gemm(8, 8, 8))
        solves = [r for r in tracer.records if r.name == "ilp.solve"]
        statistics = result.solver_statistics
        assert len(solves) == statistics["solve_calls"]
        for counter in ("pivots", "nodes", "warm_start_hits"):
            assert sum(r.counters[counter] for r in solves) == statistics[counter]

    def test_schedules_identical_tracing_on_and_off(self):
        from repro.polyhedra.emptiness import RedundancyProber

        # Both compiles must start from a cold process-shared verdict store,
        # or the second one answers its irredundancy probes from the first.
        RedundancyProber.clear_shared_store()
        plain = Session().compile(build_jacobi_1d())
        RedundancyProber.clear_shared_store()
        traced = Session(tracer=Tracer()).compile(build_jacobi_1d())
        assert str(traced.schedule) == str(plain.schedule)
        deterministic = lambda stats: {
            k: v for k, v in stats.items() if not k.endswith("_seconds")
        }
        assert deterministic(traced.solver_statistics) == deterministic(
            plain.solver_statistics
        )

    def test_compile_trace_argument_writes_perfetto_file(self, tmp_path):
        path = tmp_path / "one.json"
        Session().compile(build_listing1(), trace=str(path))
        records = load_chrome_trace(path)
        assert {"pipeline.compile", "scheduler.run"} <= {r.name for r in records}

    def test_repro_trace_env_front_door(self, tmp_path, monkeypatch):
        path = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        session = Session()
        assert session.tracer.enabled
        session.compile(build_listing1())
        assert {"pipeline.compile"} <= {r.name for r in load_chrome_trace(path)}

    def test_compile_many_parallel_nests_spans_per_compile(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        jobs = [CompilationJob(scop=build_gemm(n, n, n)) for n in (6, 7, 8, 9)]
        session.compile_many(jobs, parallel=4)
        records = tracer.records
        roots = [r for r in records if r.name == "pipeline.compile"]
        assert len(roots) == 4
        by_id = {r.span_id: r for r in records}
        # Every non-root span chains up to the pipeline.compile of its own
        # thread — concurrent compiles never adopt each other's spans.
        for record in records:
            if record.parent_id is None:
                assert record.name == "pipeline.compile"
                continue
            cursor = record
            while cursor.parent_id is not None:
                parent = by_id[cursor.parent_id]
                assert parent.thread_id == record.thread_id
                cursor = parent
            assert cursor.name == "pipeline.compile"


# --------------------------------------------------------------------------- #
# Per-context FM statistics (the FM_STATS race regression)
# --------------------------------------------------------------------------- #
class TestFmStatisticsIsolation:
    def test_concurrent_compiles_report_exact_per_result_fm_counters(self):
        sizes = (6, 7, 8, 9)
        sequential = {}
        for n in sizes:
            result = Session().compile(build_gemm(n, n, n))
            sequential[n] = {
                k: v for k, v in result.solver_statistics.items() if k.startswith("fm_")
            }
        assert all(stats["fm_rows_generated"] > 0 for stats in sequential.values())
        session = Session()
        jobs = [CompilationJob(scop=build_gemm(n, n, n)) for n in sizes]
        results = session.compile_many(jobs, parallel=4)
        for n, result in zip(sizes, results):
            concurrent = {
                k: v for k, v in result.solver_statistics.items() if k.startswith("fm_")
            }
            for key, value in sequential[n].items():
                if key.endswith("_seconds"):
                    continue  # wall time is the one legitimately noisy counter
                assert concurrent[key] == value, (n, key)


# --------------------------------------------------------------------------- #
# Metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counters_are_exact_and_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_labels_and_prometheus_rendering(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "requests")
        requests.labels(route="/v1/compile", status="200").inc(3)
        registry.gauge("uptime_seconds", "uptime").set(1.5)
        histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        histogram.labels(route="/v1/compile").observe(0.05)
        histogram.labels(route="/v1/compile").observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/v1/compile",status="200"} 3' in text
        assert "uptime_seconds 1.5" in text
        assert 'latency_seconds_bucket{route="/v1/compile",le="0.1"} 1' in text
        assert 'latency_seconds_bucket{route="/v1/compile",le="+Inf"} 2' in text
        assert 'latency_seconds_count{route="/v1/compile"} 2' in text

    def test_collect_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c", "help").labels(kind="a").inc(2)
        snapshot = registry.collect()
        assert snapshot["c"]["kind"] == "counter"
        assert snapshot["c"]["samples"] == [
            {"name": "c", "labels": {"kind": "a"}, "value": 2}
        ]


# --------------------------------------------------------------------------- #
# Service integration: /v1/metrics, spans, traces, access log
# --------------------------------------------------------------------------- #
@pytest.fixture
def server():
    instance = CompilationServer()
    instance.start_in_thread()
    yield instance
    instance.shutdown()


class TestServiceObservability:
    def test_metrics_endpoint_serves_prometheus_text(self, server):
        client = ServiceClient(server.url)
        client.compile(build_gemm(6, 6, 6))
        client.compile(build_gemm(6, 6, 6))
        import urllib.request

        with urllib.request.urlopen(server.url + "/v1/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode()
        assert 'repro_compiles_total{origin="miss"} 1' in text
        assert 'repro_compiles_total{origin="memory"} 1' in text
        assert 'repro_requests_total{route="/v1/compile",status="200"} 2' in text
        assert "repro_request_seconds_bucket" in text
        assert 'repro_session_cache_events{event="result_misses"} 1' in text

    def test_metrics_requires_read_capability(self):
        auth = ServiceAuth({"writer": "compile", "reader": "read"})
        server = CompilationServer(auth=auth)
        server.start_in_thread()
        try:
            with pytest.raises(ServiceClientError) as unauthorized:
                ServiceClient(server.url).stats()  # no token at all -> 401
            assert unauthorized.value.status == 401
            import urllib.error
            import urllib.request

            request = urllib.request.Request(
                server.url + "/v1/metrics", headers={"X-API-Token": "writer"}
            )
            with pytest.raises(urllib.error.HTTPError) as forbidden:
                urllib.request.urlopen(request)
            assert forbidden.value.code == 403
            request = urllib.request.Request(
                server.url + "/v1/metrics", headers={"X-API-Token": "reader"}
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 200
        finally:
            server.shutdown()

    def test_request_and_job_spans_carry_cache_origin(self):
        tracer = Tracer()
        session = Session(tracer=tracer)
        server = CompilationServer(session=session)
        server.start_in_thread()
        try:
            client = ServiceClient(server.url)
            client.compile(build_gemm(6, 6, 6))
            client.compile(build_gemm(6, 6, 6))
            job = client.submit(build_gemm(6, 6, 6))
            client.wait(job["id"])
        finally:
            server.shutdown()
        requests = [r for r in tracer.records if r.name == "service.request"]
        compile_spans = [
            r for r in requests if r.counters.get("route") == "/v1/compile"
        ]
        assert [r.counters["cache"] for r in compile_spans] == ["miss", "memory"]
        assert all(r.counters["status"] == 200 for r in compile_spans)
        jobs = [r for r in tracer.records if r.name == "service.job"]
        assert len(jobs) == 1 and jobs[0].counters["cache"] == "memory"

    def test_trace_dir_writes_one_file_per_compiled_request(self, tmp_path):
        trace_dir = tmp_path / "traces"
        server = CompilationServer(trace_dir=str(trace_dir))
        server.start_in_thread()
        try:
            client = ServiceClient(server.url)
            client.compile(build_gemm(6, 6, 6))
            client.compile(build_gemm(6, 6, 6))  # memory hit: no new file
        finally:
            server.shutdown()
        files = sorted(trace_dir.glob("*.json"))
        assert len(files) == 1
        assert {"pipeline.compile", "scheduler.run"} <= {
            r.name for r in load_chrome_trace(files[0])
        }

    def test_access_log_is_opt_in(self, capfd):
        server = CompilationServer()  # default: off
        server.start_in_thread()
        try:
            ServiceClient(server.url).healthz()
        finally:
            server.shutdown()
        assert capfd.readouterr().err == ""
        server = CompilationServer(access_log=True)
        server.start_in_thread()
        try:
            ServiceClient(server.url).healthz()
        finally:
            server.shutdown()
        lines = [line for line in capfd.readouterr().err.splitlines() if line.strip()]
        record = json.loads(lines[-1])
        assert record["method"] == "GET"
        assert record["route"] == "/v1/healthz"
        assert record["status"] == 200
        assert record["duration_ms"] >= 0
