"""Unit and property tests for the ILP substrate (problem, simplex, B&B, backends)."""

from __future__ import annotations

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import (
    ConstraintSense,
    ExactSimplexBackend,
    IlpSolver,
    LinearProblem,
    LpStatus,
    ScipyHighsBackend,
    StandardFormRow,
    merge_linear_terms,
    scale_linear_terms,
    solve_milp,
    solve_standard_form,
)


class TestLinearProblem:
    def test_variable_declaration_and_bounds(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        assert problem.variables["x"].lower == 0
        assert problem.variables["x"].upper == 5

    def test_inconsistent_redeclaration_rejected(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        with pytest.raises(ValueError):
            problem.add_variable("x", 0, 6)

    def test_redeclaration_consistent_ok(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        problem.add_variable("x", 0, 5)
        assert len(problem.variables) == 1

    def test_invalid_bounds(self):
        problem = LinearProblem()
        with pytest.raises(ValueError):
            problem.add_variable("x", 5, 0)

    def test_constraint_unknown_variable(self):
        problem = LinearProblem()
        problem.add_variable("x")
        with pytest.raises(KeyError):
            problem.add_constraint({"y": 1}, ">=", 0)

    def test_objective_unknown_variable(self):
        problem = LinearProblem()
        with pytest.raises(KeyError):
            problem.add_objective({"x": 1})

    def test_feasibility_check(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 10)
        problem.add_constraint({"x": 1}, ">=", 3)
        assert problem.is_feasible_assignment({"x": 4})
        assert not problem.is_feasible_assignment({"x": 2})
        assert not problem.is_feasible_assignment({"x": Fraction(7, 2)})

    def test_copy_is_independent(self):
        problem = LinearProblem()
        problem.add_variable("x")
        clone = problem.copy()
        clone.add_constraint({"x": 1}, ">=", 1)
        assert not problem.constraints

    def test_merge_and_scale_terms(self):
        merged = merge_linear_terms({"a": 1, "b": 2}, {"a": -1, "c": 3})
        assert merged == {"b": Fraction(2), "c": Fraction(3)}
        assert scale_linear_terms({"a": 2}, Fraction(1, 2)) == {"a": Fraction(1)}


class TestSimplex:
    def test_simple_minimisation(self):
        rows = [StandardFormRow.build([1, 2], ">=", 3)]
        result = solve_standard_form(2, rows, [1, 1])
        assert result.status is LpStatus.OPTIMAL
        assert result.objective == Fraction(3, 2)

    def test_equality_constraints(self):
        rows = [StandardFormRow.build([1, 1], "==", 4), StandardFormRow.build([1, -1], "==", 2)]
        result = solve_standard_form(2, rows, [0, 0])
        assert result.status is LpStatus.OPTIMAL
        assert result.values[0] == 3 and result.values[1] == 1

    def test_infeasible(self):
        rows = [
            StandardFormRow.build([1], "<=", 1),
            StandardFormRow.build([1], ">=", 2),
        ]
        assert solve_standard_form(1, rows, [1]).status is LpStatus.INFEASIBLE

    def test_unbounded(self):
        result = solve_standard_form(1, [], [-1])
        assert result.status is LpStatus.UNBOUNDED

    def test_negative_rhs_normalisation(self):
        rows = [StandardFormRow.build([-1], "<=", -2)]  # i.e. x >= 2
        result = solve_standard_form(1, rows, [1])
        assert result.status is LpStatus.OPTIMAL
        assert result.values[0] == 2

    def test_degenerate_problem_terminates(self):
        rows = [
            StandardFormRow.build([1, 1], "<=", 0),
            StandardFormRow.build([1, -1], "<=", 0),
            StandardFormRow.build([1, 0], ">=", 0),
        ]
        result = solve_standard_form(2, rows, [-1, 0])
        assert result.status is LpStatus.OPTIMAL
        assert result.values[0] == 0


def _brute_force(problem: LinearProblem, objective):
    """Exhaustively enumerate bounded integer assignments (tests only)."""
    names = list(problem.variables)
    ranges = []
    for name in names:
        variable = problem.variables[name]
        ranges.append(range(int(variable.lower), int(variable.upper) + 1))
    best = None
    for values in itertools.product(*ranges):
        assignment = dict(zip(names, values))
        if not problem.is_feasible_assignment(assignment):
            continue
        value = sum(Fraction(objective.get(n, 0)) * v for n, v in assignment.items())
        if best is None or value < best:
            best = value
    return best


class TestBranchAndBound:
    def test_integer_optimum_differs_from_lp(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 10)
        problem.add_constraint({"x": 2}, ">=", 3)  # x >= 1.5 -> integer x >= 2
        result = solve_milp(problem, {"x": Fraction(1)})
        assert result.status is LpStatus.OPTIMAL
        assert result.assignment["x"] == 2

    def test_feasibility_only(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 3)
        problem.add_variable("y", 0, 3)
        problem.add_constraint({"x": 1, "y": 1}, "==", 5)
        result = solve_milp(problem)
        assert result.status is LpStatus.OPTIMAL
        assert problem.is_feasible_assignment(result.assignment)

    def test_infeasible_problem(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 1)
        problem.add_constraint({"x": 1}, ">=", 2)
        assert solve_milp(problem).status is LpStatus.INFEASIBLE

    def test_no_integer_point_in_fractional_region(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 10)
        problem.add_constraint({"x": 2}, "==", 5)  # x = 2.5 has no integer solution
        assert solve_milp(problem).status is LpStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", [ExactSimplexBackend(), ScipyHighsBackend()])
    def test_backends_agree_on_small_problem(self, backend):
        problem = LinearProblem()
        problem.add_variable("x", 0, 4)
        problem.add_variable("y", 0, 4)
        problem.add_constraint({"x": 1, "y": 2}, ">=", 5)
        problem.add_constraint({"x": 1, "y": -1}, "<=", 1)
        result = solve_milp(problem, {"x": 3, "y": 1}, backend=backend)
        assert result.status is LpStatus.OPTIMAL
        assert result.objective == 3  # x=0, y=3 minimises 3x + y
        assert problem.is_feasible_assignment(result.assignment)

    @given(
        st.lists(
            st.tuples(
                st.integers(-3, 3), st.integers(-3, 3), st.integers(-4, 6)
            ),
            min_size=1,
            max_size=4,
        ),
        st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, constraint_rows, objective_coeffs):
        problem = LinearProblem()
        problem.add_variable("x", 0, 4)
        problem.add_variable("y", 0, 4)
        for a, b, rhs in constraint_rows:
            problem.add_constraint({"x": a, "y": b}, ">=", rhs)
        objective = {"x": Fraction(objective_coeffs[0]), "y": Fraction(objective_coeffs[1])}
        expected = _brute_force(problem, objective)
        result = solve_milp(problem, objective)
        if expected is None:
            assert result.status is LpStatus.INFEASIBLE
        else:
            assert result.status is LpStatus.OPTIMAL
            assert result.objective == expected


class TestLexicographicSolver:
    def test_two_stage_minimisation(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        problem.add_variable("y", 0, 5)
        problem.add_constraint({"x": 1, "y": 1}, ">=", 4)
        problem.add_objective({"x": 1})      # first minimise x
        problem.add_objective({"y": 1})      # then y
        solution = IlpSolver().solve(problem)
        assert solution is not None
        assert solution.value("x") == 0
        assert solution.value("y") == 4
        assert solution.objective_values == [Fraction(0), Fraction(4)]

    def test_priority_order_matters(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        problem.add_variable("y", 0, 5)
        problem.add_constraint({"x": 1, "y": 1}, ">=", 4)
        problem.add_objective({"y": 1})
        problem.add_objective({"x": 1})
        solution = IlpSolver().solve(problem)
        assert solution.value("y") == 0
        assert solution.value("x") == 4

    def test_no_objectives_feasibility(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 3)
        problem.add_constraint({"x": 1}, ">=", 2)
        solution = IlpSolver().solve(problem)
        assert solution is not None
        assert solution.value("x") >= 2

    def test_infeasible_returns_none(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 1)
        problem.add_constraint({"x": 1}, ">=", 5)
        problem.add_objective({"x": 1})
        assert IlpSolver().solve(problem) is None

    def test_is_feasible_helper(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 1)
        problem.add_objective({"x": 1})
        assert IlpSolver().is_feasible(problem)

    def test_exact_backend_end_to_end(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 6)
        problem.add_constraint({"x": 3}, ">=", 7)
        problem.add_objective({"x": 1})
        solution = IlpSolver(backend=ExactSimplexBackend()).solve(problem)
        assert solution.value("x") == 3


class TestBackends:
    def test_highs_available(self):
        assert ScipyHighsBackend.is_available()

    def test_highs_matches_exact_simplex_lp(self):
        rows = [
            StandardFormRow.build([1, 2], ">=", 3),
            StandardFormRow.build([2, 1], ">=", 3),
        ]
        exact = ExactSimplexBackend().solve(2, rows, [Fraction(1), Fraction(1)])
        fast = ScipyHighsBackend().solve(2, rows, [Fraction(1), Fraction(1)])
        assert exact.status is LpStatus.OPTIMAL and fast.status is LpStatus.OPTIMAL
        assert exact.objective == fast.objective == Fraction(2)

    def test_highs_detects_infeasible(self):
        rows = [
            StandardFormRow.build([1], "<=", 1),
            StandardFormRow.build([1], ">=", 3),
        ]
        assert ScipyHighsBackend().solve(1, rows, [Fraction(0)]).status is LpStatus.INFEASIBLE

    def test_highs_detects_unbounded(self):
        assert ScipyHighsBackend().solve(1, [], [Fraction(-1)]).status is LpStatus.UNBOUNDED
