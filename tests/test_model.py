"""Unit tests for the SCoP model: accesses, statements, schedules, builder, scop."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.model import (
    AccessKind,
    ArrayAccess,
    Schedule,
    ScopBuilder,
    StatementSchedule,
)
from repro.polyhedra import AffineExpr


class TestArrayAccess:
    def test_read_write_constructors(self):
        i = AffineExpr.variable("i")
        read = ArrayAccess.read("A", [i, 2])
        write = ArrayAccess.write("A", [i])
        assert read.is_read and not read.is_write
        assert write.is_write
        assert read.rank == 2

    def test_kind_of(self):
        assert ArrayAccess.read("A", []).kind is AccessKind.READ

    def test_evaluate(self):
        i = AffineExpr.variable("i")
        access = ArrayAccess.read("A", [2 * i + 1, i])
        assert access.evaluate({"i": 3}) == (7, 3)

    def test_rename(self):
        i = AffineExpr.variable("i")
        access = ArrayAccess.read("A", [i]).rename({"i": "x"})
        assert access.indices[0].coefficient("x") == 1

    def test_contiguous_iterator_last_subscript(self):
        i, j = AffineExpr.variable("i"), AffineExpr.variable("j")
        assert ArrayAccess.read("A", [i, j]).contiguous_iterator() == "j"
        assert ArrayAccess.read("A", [j, i]).contiguous_iterator() == "i"
        assert ArrayAccess.read("A", []).contiguous_iterator() is None
        # A strided last subscript has no single unit-coefficient iterator.
        assert ArrayAccess.read("A", [i, 2 * j]).contiguous_iterator() is None


class TestBuilder:
    def test_statement_domain_and_schedule(self, gemm_scop):
        update = gemm_scop.statement("S1")
        assert update.iterators == ("i", "j", "k")
        assert update.depth == 3
        # 2d+1 representation: beta, i, beta, j, beta, k, beta
        assert len(update.original_schedule) == 7

    def test_textual_order_is_recorded(self, gemm_scop):
        init = gemm_scop.statement("S0")
        update = gemm_scop.statement("S1")
        # S0 and S1 share the i and j loops; the beta at depth 2 orders them.
        assert init.original_schedule[4].constant == 0
        assert update.original_schedule[4].constant == 1

    def test_duplicate_iterator_rejected(self):
        b = ScopBuilder("bad", parameters={"N": 4})
        N = b.parameter("N")
        with b.loop("i", 0, N):
            with pytest.raises(ValueError):
                b.loop("i", 0, N).__enter__()

    def test_unknown_parameter_rejected(self):
        b = ScopBuilder("bad")
        with pytest.raises(KeyError):
            b.parameter("N")

    def test_build_with_open_loops_rejected(self):
        b = ScopBuilder("bad", parameters={"N": 4})
        N = b.parameter("N")
        context = b.loop("i", 0, N)
        context.__enter__()
        with pytest.raises(RuntimeError):
            b.build()

    def test_context_constraints_assume_positive_parameters(self, gemm_scop):
        assert len(gemm_scop.context) == 3  # NI, NJ, NK >= 1

    def test_triangular_domain(self):
        b = ScopBuilder("tri", parameters={"N": 6})
        N = b.parameter("N")
        b.array("A", N, N)
        with b.loop("i", 0, N) as i:
            with b.loop("j", 0, i) as j:
                b.statement(writes=[("A", [i, j])])
        scop = b.build()
        domain = scop.statement("S0").domain
        assert domain.contains({"i": 3, "j": 2, "N": 6})
        assert not domain.contains({"i": 3, "j": 3, "N": 6})

    def test_generic_body_reads_and_writes(self):
        b = ScopBuilder("body", parameters={"N": 4})
        N = b.parameter("N")
        b.array("A", N)
        b.array("B", N)
        with b.loop("i", 0, N) as i:
            b.statement(writes=[("B", [i])], reads=[("A", [i])])
        scop = b.build()
        arrays = scop.allocate_arrays()
        before = arrays["B"].copy()
        scop.statement("S0").execute(arrays, {"i": 1, "N": 4})
        assert arrays["B"][1] != before[1]
        assert (arrays["B"][2:] == before[2:]).all()


class TestStatementHelpers:
    def test_contiguity_votes(self, gemm_scop):
        update = gemm_scop.statement("S1")
        votes = update.contiguity_votes()
        # C[i][j] (x2) and B[k][j] are contiguous in j, A[i][k] in k.
        assert votes["j"] == 3
        assert votes["k"] == 1
        assert update.preferred_vector_iterator() == "j"

    def test_iterator_extent(self, gemm_scop):
        update = gemm_scop.statement("S1")
        assert update.iterator_extent("i", {"NI": 10, "NJ": 10, "NK": 10}) == 10

    def test_reads_and_writes_partition(self, gemm_scop):
        update = gemm_scop.statement("S1")
        assert len(update.writes()) == 1
        assert len(update.reads()) == 3
        assert update.accessed_arrays() == {"A", "B", "C"}


class TestSchedule:
    def test_identity_and_padding(self):
        schedule = Schedule.identity(
            {"S0": [AffineExpr.variable("i")], "S1": [AffineExpr.variable("j"), AffineExpr.const(1)]}
        )
        padded = schedule.padded()
        assert padded.statements["S0"].n_dims == 2
        assert padded.statements["S0"].rows[1] == AffineExpr.const(0)

    def test_date_and_lexicographic_use(self):
        statement = StatementSchedule("S0", (AffineExpr.variable("i") + 1,))
        assert statement.date({"i": 3}) == (Fraction(4),)

    def test_scalar_dim_detection(self):
        schedule = Schedule.identity(
            {"S0": [AffineExpr.const(0), AffineExpr.variable("i")]}
        )
        assert schedule.is_scalar_dim(0)
        assert not schedule.is_scalar_dim(1)

    def test_band_members(self):
        schedule = Schedule.identity({"S0": [AffineExpr.variable("i"), AffineExpr.variable("j")]})
        schedule.bands = [0, 0]
        assert schedule.band_members(0) == [0, 1]
        assert schedule.tilable_bands() == [[0, 1]]

    def test_outer_parallel_dim(self):
        schedule = Schedule.identity({"S0": [AffineExpr.variable("i")]})
        schedule.parallel_dims = [True]
        assert schedule.outer_parallel_dim() == 0


class TestScop:
    def test_statement_lookup(self, gemm_scop):
        assert gemm_scop.statement("S0").index == 0
        assert gemm_scop.statement_by_index(1).name == "S1"
        with pytest.raises(KeyError):
            gemm_scop.statement("does-not-exist")

    def test_original_schedule_orders_instances(self, gemm_scop):
        schedule = gemm_scop.original_schedule()
        init_date = schedule.date("S0", {"i": 2, "j": 3, "NI": 10, "NJ": 10, "NK": 10})
        update_date = schedule.date("S1", {"i": 2, "j": 3, "k": 0, "NI": 10, "NJ": 10, "NK": 10})
        assert tuple(init_date) < tuple(update_date)

    def test_allocate_arrays_shapes(self, gemm_scop):
        arrays = gemm_scop.allocate_arrays()
        assert arrays["C"].shape == (10, 10)
        assert arrays["A"].dtype == np.float64

    def test_resolved_parameters_missing(self):
        b = ScopBuilder("x", parameters=("N",))
        scop = b.build()
        with pytest.raises(ValueError):
            scop.resolved_parameters()

    def test_max_depth(self, gemm_scop, sequence_scop):
        assert gemm_scop.max_depth() == 3
        assert sequence_scop.max_depth() == 1
