"""Tests for configurations, the JSON interface and the custom-constraint language."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.scheduler import (
    ConfigurationError,
    CustomConstraintParser,
    DimensionConfig,
    Directive,
    FusionSpec,
    SchedulerConfig,
    registered_cost_functions,
    resolve_cost_function,
    strategy_by_name,
)
from repro.scheduler.config import DEFAULT_DIMENSION
from repro.scheduler.naming import (
    constant_coefficient,
    iterator_coefficient,
    parameter_coefficient,
)

LISTING2_JSON = """
{
  "scheduling_strategy" : {
    "new_variables" : ["x"],
    "ILP_construction" : [
      {"scheduling_dimension" : "default",
       "cost_functions" : ["contiguity", "proximity", "x"]}
    ],
    "custom_constraints" : [
      {"scheduling_dimension" : "default",
       "constraints" : ["x - S0_it_i >= 0"]}
    ],
    "fusion" : [
      {"scheduling_dimension" : 0,
       "total_distribution" : false,
       "stmts_fusion" : [["0", "1"], ["2"]]}
    ],
    "directives" : [
      {"type" : "vectorize", "stmts" : "0", "iterator" : "1"}
    ]
  }
}
"""


class TestSchedulerConfigJson:
    def test_listing2_roundtrip(self):
        config = SchedulerConfig.from_json(LISTING2_JSON)
        assert config.new_variables == ("x",)
        assert config.dimension_config(0).cost_functions == ("contiguity", "proximity", "x")
        assert config.constraints_for(0) == ("x - S0_it_i >= 0",)
        fusion = config.fusion_for(0)
        assert fusion is not None and fusion.groups == (("0", "1"), ("2",))
        assert config.directives[0].kind == "vectorize"
        # Serialise back and parse again.
        again = SchedulerConfig.from_json(config.to_json())
        assert again.dimension_config(0).cost_functions == config.dimension_config(0).cost_functions

    def test_dimension_specific_overrides_default(self):
        config = SchedulerConfig(
            ilp_construction={
                DEFAULT_DIMENSION: DimensionConfig(("proximity",)),
                1: DimensionConfig(("feautrier",)),
            }
        )
        assert config.dimension_config(0).cost_functions == ("proximity",)
        assert config.dimension_config(1).cost_functions == ("feautrier",)

    def test_unknown_directive_rejected(self):
        with pytest.raises(ConfigurationError):
            Directive(kind="unroll", statements=("0",))

    def test_options_section(self):
        config = SchedulerConfig.from_json(
            {
                "scheduling_strategy": {
                    "options": {
                        "auto_vectorization": True,
                        "negative_coefficients": True,
                        "coefficient_bound": 7,
                        "tile_sizes": [16, 16],
                    }
                }
            }
        )
        assert config.auto_vectorize
        assert config.allow_negative_coefficients
        assert config.coefficient_bound == 7
        assert config.tile_sizes == (16, 16)

    def test_with_directives_copy(self):
        config = SchedulerConfig()
        extended = config.with_directives([Directive("parallel", ("0",))])
        assert not config.directives
        assert extended.directives[0].kind == "parallel"


class TestStrategies:
    def test_predefined_strategies_exist(self):
        for name in ("pluto", "tensor", "isl", "feautrier", "blf", "npu-vectorize", "pluto+"):
            config = strategy_by_name(name)
            assert isinstance(config, SchedulerConfig)

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            strategy_by_name("does-not-exist")

    def test_tensor_style_has_no_skewing(self):
        config = strategy_by_name("tensor")
        assert "no-skewing" in config.constraints_for(0)

    def test_pluto_plus_allows_negative_coefficients(self):
        assert strategy_by_name("pluto+").allow_negative_coefficients

    def test_isl_style_has_dynamic_callback(self):
        assert strategy_by_name("isl").strategy_callback is not None

    def test_registered_cost_functions(self):
        names = registered_cost_functions()
        assert {"proximity", "feautrier", "contiguity", "bigLoopsFirst"} <= set(names)

    def test_resolve_unknown_cost_function(self):
        with pytest.raises(ConfigurationError):
            resolve_cost_function("not-a-cost")

    def test_resolve_user_variable_cost(self):
        cost = resolve_cost_function("x", user_variables=("x",))
        assert cost.name == "x"


class TestCustomConstraintParser:
    @pytest.fixture
    def parser(self, gemm_scop):
        return CustomConstraintParser(gemm_scop.statements, user_variables=("x",))

    def test_single_coefficient(self, parser):
        rows = parser.parse("S1_it_0 >= 1")
        coeffs, sense, rhs = rows[0]
        assert coeffs == {iterator_coefficient("S1", "i"): Fraction(1)}
        assert sense == ">=" and rhs == 1

    def test_sum_over_iterators(self, parser):
        rows = parser.parse("S1_it_i <= 1")
        coeffs, sense, rhs = rows[0]
        assert set(coeffs) == {
            iterator_coefficient("S1", "i"),
            iterator_coefficient("S1", "j"),
            iterator_coefficient("S1", "k"),
        }
        assert sense == ">="  # normalised from <=
        assert rhs == -1

    def test_sum_over_statements(self, parser):
        rows = parser.parse("Si_cst == 0")
        coeffs, sense, rhs = rows[0]
        assert set(coeffs) == {constant_coefficient("S0"), constant_coefficient("S1")}

    def test_parameter_coefficients(self, parser):
        rows = parser.parse("S0_par_0 == 0")
        coeffs, _, _ = rows[0]
        assert coeffs == {parameter_coefficient("S0", "NI"): Fraction(1)}

    def test_user_variable_and_arithmetic(self, parser):
        rows = parser.parse("x - S0_it_i >= 0")
        coeffs, sense, rhs = rows[0]
        assert coeffs["x"] == 1
        assert coeffs[iterator_coefficient("S0", "i")] == -1
        assert rhs == 0

    def test_multiplication_by_constant(self, parser):
        rows = parser.parse("2*S1_it_0 + 3 >= 1")
        coeffs, _, rhs = rows[0]
        assert coeffs[iterator_coefficient("S1", "i")] == 2
        assert rhs == -2  # 1 - 3

    def test_named_no_skewing(self, parser):
        rows = parser.parse("no-skewing")
        assert len(rows) == 2  # one per statement
        for coeffs, sense, rhs in rows:
            assert sense == ">=" and rhs == -1
            assert all(value == -1 for value in coeffs.values())

    def test_named_no_parameter_shift(self, parser):
        rows = parser.parse("no-parameter-shift")
        assert all(sense == "==" for _, sense, _ in rows)

    def test_unknown_symbol(self, parser):
        with pytest.raises(ConfigurationError):
            parser.parse("y >= 0")

    def test_missing_relation(self, parser):
        with pytest.raises(ConfigurationError):
            parser.parse("S0_it_0 + 1")

    def test_unknown_statement_index(self, parser):
        with pytest.raises(ConfigurationError):
            parser.parse("S9_it_0 >= 0")

    def test_parse_all_flattens(self, parser):
        rows = parser.parse_all(["S0_it_0 >= 0", "S1_it_0 >= 0"])
        assert len(rows) == 2


class TestConfigJsonRoundTrip:
    """``SchedulerConfig.from_json(cfg.to_json())`` must reproduce ``cfg``.

    Covers every configuration used by the examples and by
    ``experiments/kernel_configs.py``.  The dynamic strategy callback (the
    paper's C++ interface) is the one part JSON cannot carry; configurations
    that use one are compared with the callback stripped.
    """

    @staticmethod
    def _all_configs():
        from repro.scheduler import (
            Directive as D,
            PlutoBaseline,
            PlutoLpDfpBaseline,
            PlutoPlusBaseline,
            IslPpcgBaseline,
            big_loops_first_style,
            feautrier_style,
            isl_style,
            kernel_specific,
            npu_vectorize_style,
            pluto_plus_style,
            pluto_style,
            tensor_scheduler_style,
        )
        from repro.experiments.kernel_configs import kernel_specific_candidates

        configs = [
            pluto_style(),
            pluto_plus_style(),
            tensor_scheduler_style(),
            feautrier_style(),
            isl_style(),
            big_loops_first_style(),
            npu_vectorize_style(),
            # examples/custom_operator_npu.py
            npu_vectorize_style(
                directives=(D(kind="vectorize", statements=("0", "1"), iterator="k"),)
            ),
            # examples/quickstart.py and examples/kernel_specific_config.py
            SchedulerConfig.from_json(
                '{"scheduling_strategy": {"name": "pluto-style", "ILP_construction": '
                '[{"scheduling_dimension": "default", "cost_functions": ["proximity"]}]}}'
            ),
            SchedulerConfig.from_json(LISTING2_JSON),
            kernel_specific(name="tiled", cost_functions=("proximity",), tile_sizes=(4, 4, 4)),
        ]
        for kernel in ("gemm", "gramschmidt", "jacobi-1d", "atax", "symm", "seidel-2d"):
            configs.extend(kernel_specific_candidates(kernel))
        for baseline in (
            PlutoBaseline(),
            PlutoPlusBaseline(),
            PlutoLpDfpBaseline(),
            IslPpcgBaseline(),
        ):
            configs.extend(baseline.configs())
        return configs

    def test_round_trip_equality(self):
        import dataclasses

        for config in self._all_configs():
            restored = SchedulerConfig.from_json(config.to_json())
            expected = (
                dataclasses.replace(config, strategy_callback=None)
                if config.strategy_callback is not None
                else config
            )
            assert restored == expected, f"round trip changed {config.name!r}"

    def test_round_trip_is_idempotent(self):
        for config in self._all_configs():
            once = SchedulerConfig.from_json(config.to_json())
            twice = SchedulerConfig.from_json(once.to_json())
            assert once == twice, f"second round trip changed {config.name!r}"
