"""Golden-schedule regression corpus.

A representative slice of the fig2 PolyBench corpus (one kernel per suite
family, both scheduling strategies) is pinned to checked-in golden files:
per-statement schedule rows **and** the branch & bound ``node_key`` of every
ILP the run solved.  The schedule rows freeze the end-to-end result; the
node keys freeze the *search path* — a change that lands on the same
schedule through a different tree (a lost warm start, a reordered branch, a
broken tie-break) still fails loudly instead of silently drifting.

On drift:

* an intended change (new cost function default, engine search-order
  change) regenerates the corpus with::

      PYTHONPATH=src python tests/golden/regenerate.py

  and the diff of ``tests/golden/schedules.json`` becomes part of the
  review;
* an unintended change is a regression — fix it, do not regenerate.

The capture always forces the incremental engine (the golden search paths
are engine search paths); the schedule rows themselves are differentially
checked against the oracle by ``benchmarks/differential_sweep.py``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

GOLDEN_PATH = Path(__file__).parent / "golden" / "schedules.json"

#: (kernel, config factory name) cases: one kernel per PolyBench family —
#: dense blas (gemm), bandwidth-bound blas (gemver), a stencil (jacobi-2d),
#: a solver (cholesky) and a datamining kernel (correlation) — under both
#: strategies the paper leans on.
GOLDEN_KERNELS = ("gemm", "gemver", "jacobi-2d", "cholesky", "correlation")


def capture_case(kernel: str, config) -> dict:
    """Schedule rows + per-ILP node keys for one (kernel, config) run."""
    from repro.scheduler.core import PolyTOPSScheduler
    from repro.scheduler.solver_context import SolverContext
    from repro.suites.polybench import build_kernel

    node_keys: list[list[int] | None] = []
    original_solve = SolverContext.solve

    def recording_solve(self, problem):
        solution = original_solve(self, problem)
        if solution is not None:
            key = solution.node_key
            node_keys.append(None if key is None else list(key))
        return solution

    saved_engine = os.environ.get("REPRO_ILP_ENGINE")
    os.environ["REPRO_ILP_ENGINE"] = "incremental"
    SolverContext.solve = recording_solve
    try:
        result = PolyTOPSScheduler(build_kernel(kernel), config).schedule()
    finally:
        SolverContext.solve = original_solve
        if saved_engine is None:
            os.environ.pop("REPRO_ILP_ENGINE", None)
        else:
            os.environ["REPRO_ILP_ENGINE"] = saved_engine
    return {
        "statements": {
            name: [str(row) for row in statement.rows]
            for name, statement in result.schedule.statements.items()
        },
        "node_keys": node_keys,
    }


def capture_corpus() -> dict:
    from repro.scheduler.strategies import isl_style, pluto_style

    corpus: dict[str, dict] = {}
    for kernel in GOLDEN_KERNELS:
        for config in (pluto_style(), isl_style()):
            corpus[f"{kernel}/{config.name}"] = capture_case(kernel, config)
    return corpus


def test_schedules_match_golden_corpus():
    assert GOLDEN_PATH.exists(), (
        f"missing golden corpus at {GOLDEN_PATH}; generate it with "
        "`PYTHONPATH=src python tests/golden/regenerate.py`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    current = capture_corpus()
    assert sorted(current) == sorted(golden), "golden corpus case list drifted"
    for case, expected in golden.items():
        actual = current[case]
        assert actual["statements"] == expected["statements"], (
            f"schedule drift on {case}: if intended, regenerate with "
            "`PYTHONPATH=src python tests/golden/regenerate.py` and review "
            "the diff"
        )
        assert actual["node_keys"] == expected["node_keys"], (
            f"branch & bound search-path drift on {case} (schedules equal): "
            "the solver reached the same answer differently; if intended, "
            "regenerate the corpus and call the change out in review"
        )
