"""Differential and directed tests for the revised-simplex core.

The contract of :mod:`repro.ilp.revised`: ``core="revised"`` is a drop-in
replacement for the dense integer tableau.  Every pivot decision reads the
exact integers the dense tableau would hold, so solutions, objective values
and branch & bound ``node_key`` witnesses are bit-identical across the two
cores — for any worker count and any refactorisation policy.

Three layers of evidence:

* property-based differential runs (revised == tableau == oracle == brute
  force on fully-boxed instances),
* directed :class:`~repro.linalg.sparse_lu.EtaFile` regressions against a
  ``Fraction`` Gauss–Jordan ground truth (pivot, negate, permutation-needing
  refactorisation, singular bases, staleness),
* plumbing checks: ``REPRO_ILP_CORE`` validation, counter flow, pickling for
  process workers, and the sparse ``_encode_integer_row`` fast path.
"""

from __future__ import annotations

import itertools
import os
import pickle
import random
from fractions import Fraction

import pytest

from repro.ilp import IlpSolver, LinearProblem
from repro.ilp.engine import IncrementalIlpEngine, _default_core
from repro.ilp.revised import _RevisedTableau
from repro.linalg.sparse_lu import EtaFile, FactorizationError, SingularBasisError

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

settings.register_profile(
    "default",
    derandomize=True,
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    max_examples=1000,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


class _ForcedCore:
    """Temporarily pin ``REPRO_ILP_CORE`` (None = unset)."""

    def __init__(self, value: str | None):
        self.value = value
        self.saved: str | None = None

    def __enter__(self):
        self.saved = os.environ.pop("REPRO_ILP_CORE", None)
        if self.value is not None:
            os.environ["REPRO_ILP_CORE"] = self.value
        return self

    def __exit__(self, *exc):
        os.environ.pop("REPRO_ILP_CORE", None)
        if self.saved is not None:
            os.environ["REPRO_ILP_CORE"] = self.saved


# --------------------------------------------------------------------------- #
# Problem generators
# --------------------------------------------------------------------------- #
@st.composite
def milp_problems(draw) -> LinearProblem:
    """Small fully-boxed ILPs: free of unbounded rays, brute-forceable."""
    n = draw(st.integers(min_value=1, max_value=3))
    problem = LinearProblem()
    for index in range(n):
        lower = draw(st.integers(min_value=-3, max_value=2))
        problem.add_variable(f"x{index}", lower, lower + draw(st.integers(0, 4)))
    names = list(problem.variables)
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        coefficients = {
            name: draw(st.integers(min_value=-3, max_value=3)) for name in names
        }
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        problem.add_constraint(
            coefficients,
            draw(st.sampled_from([">=", "<=", "=="])),
            draw(st.integers(min_value=-5, max_value=8)),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        objective = {
            name: draw(st.integers(min_value=-2, max_value=2)) for name in names
        }
        objective = {k: v for k, v in objective.items() if v}
        if objective:
            problem.add_objective(objective)
    return problem


def _brute_force(problem: LinearProblem):
    ranges = []
    for variable in problem.variables.values():
        low = -((-variable.lower.numerator) // variable.lower.denominator)
        high = variable.upper.numerator // variable.upper.denominator
        if low > high:
            return None
        ranges.append([Fraction(v) for v in range(low, high + 1)])
    names = list(problem.variables)
    best = None
    for point in itertools.product(*ranges):
        assignment = dict(zip(names, point))
        if not all(c.evaluate(assignment) for c in problem.constraints):
            continue
        key = tuple(
            sum(
                (c * assignment.get(n, Fraction(0)) for n, c in objective.items()),
                Fraction(0),
            )
            for objective in problem.objectives
        )
        if best is None or key < best:
            best = key
    return best


def _random_problem(rng: random.Random) -> LinearProblem:
    """Scheduler-shaped random MILP (bounded integers, mixed senses)."""
    problem = LinearProblem()
    n = rng.randint(2, 6)
    names = [f"x{i}" for i in range(n)]
    for name in names:
        problem.add_variable(name, 0, rng.randint(2, 8))
    for _ in range(rng.randint(1, 7)):
        coefficients = {
            name: rng.randint(-3, 3) for name in rng.sample(names, rng.randint(1, n))
        }
        coefficients = {k: v for k, v in coefficients.items() if v}
        if not coefficients:
            continue
        problem.add_constraint(
            coefficients, rng.choice([">=", "<=", "=="]), rng.randint(-5, 9)
        )
    for _ in range(rng.randint(0, 2)):
        objective = {name: rng.randint(-3, 3) for name in names}
        objective = {k: v for k, v in objective.items() if v}
        if objective:
            problem.add_objective(objective)
    return problem


def _branching_heavy() -> LinearProblem:
    problem = LinearProblem()
    coefficients = [2, 3, 5, 7, 11]
    for index in range(len(coefficients)):
        problem.add_variable(f"x{index}", 0, 3)
    problem.add_constraint(
        {f"x{index}": value for index, value in enumerate(coefficients)}, "==", 23
    )
    problem.add_objective({f"x{index}": 1 for index in range(len(coefficients))})
    return problem


# --------------------------------------------------------------------------- #
# Differential: revised == tableau == oracle == brute force
# --------------------------------------------------------------------------- #
class TestFourWayDifferential:
    @given(problem=milp_problems())
    def test_all_four_solvers_agree(self, problem: LinearProblem):
        expected = _brute_force(problem)
        revised = IlpSolver(engine="incremental", core="revised")
        tableau = IlpSolver(engine="incremental", core="tableau")
        revised_solution = revised.solve(problem)
        tableau_solution = tableau.solve(problem)
        oracle_solution = IlpSolver(engine="oracle").solve(problem)
        assert revised.engine_fallbacks == 0
        assert tableau.engine_fallbacks == 0
        if expected is None:
            assert revised_solution is None
            assert tableau_solution is None
            assert oracle_solution is None
            return
        assert revised_solution is not None
        assert tableau_solution is not None
        assert oracle_solution is not None
        assert tuple(revised_solution.objective_values) == expected
        assert tuple(tableau_solution.objective_values) == expected
        assert tuple(oracle_solution.objective_values) == expected
        # Bit-identity, not just optimality: same incumbent, same B&B path.
        assert revised_solution.assignment == tableau_solution.assignment
        assert revised_solution.node_key == tableau_solution.node_key
        assert problem.is_feasible_assignment(revised_solution.assignment)

    @given(problem=milp_problems())
    def test_pivot_and_node_counters_match_across_cores(
        self, problem: LinearProblem
    ):
        # The revised core must replay the dense pivot sequence exactly, so
        # all work counters shared by the two cores agree — any divergence
        # means a pivot decision read a different number.
        solvers = {
            core: IlpSolver(engine="incremental", core=core)
            for core in ("revised", "tableau")
        }
        for solver in solvers.values():
            solver.solve(problem)
        revised_stats = solvers["revised"].statistics_summary()
        tableau_stats = solvers["tableau"].statistics_summary()
        for counter in ("pivots", "phase1_pivots", "nodes", "bound_flips"):
            assert revised_stats[counter] == tableau_stats[counter], counter


class TestWorkerAndCoreDeterminism:
    def test_node_key_identical_across_cores_and_worker_counts(self):
        problem = _branching_heavy()
        base = IlpSolver(core="tableau", workers=1).solve(problem)
        assert base is not None and base.node_key is not None
        for core in ("revised", "tableau"):
            for workers in (1, 2, 4):
                solver = IlpSolver(core=core, workers=workers)
                solution = solver.solve(problem)
                assert solution is not None, (core, workers)
                assert solution.node_key == base.node_key, (core, workers)
                assert solution.assignment == base.assignment, (core, workers)
                solver.close()

    def test_randomised_process_and_thread_workers_match(self):
        rng = random.Random(20260808)
        revised = IlpSolver(core="revised", workers=3)
        tableau = IlpSolver(core="tableau", workers=3)
        try:
            for _ in range(10):
                problem = _random_problem(rng)
                a = revised.solve(problem)
                b = tableau.solve(problem)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.node_key == b.node_key
                    assert a.assignment == b.assignment
        finally:
            revised.close()
            tableau.close()

    def test_refactor_threshold_does_not_perturb_results(self, monkeypatch):
        # Re-inversion is observably transparent: forcing a refactorisation
        # after every single eta update must not change any pivot decision.
        problem = _branching_heavy()
        base = IlpSolver(core="revised").solve(problem)
        monkeypatch.setattr("repro.ilp.revised._MIN_REFRESH_OPS", 0)
        eager_solver = IlpSolver(core="revised")
        eager = eager_solver.solve(problem)
        assert eager is not None and base is not None
        assert eager.node_key == base.node_key
        assert eager.assignment == base.assignment
        assert eager_solver.statistics_summary()["refactorizations"] > 0


# --------------------------------------------------------------------------- #
# EtaFile directed regressions (Fraction ground truth)
# --------------------------------------------------------------------------- #
def _dense_inverse_times_den(columns: list[list[int]]) -> tuple[list[list[Fraction]], int]:
    """``(B^{-1}, |det B|)`` of the matrix with the given dense columns."""
    m = len(columns)
    matrix = [[Fraction(columns[k][i]) for k in range(m)] for i in range(m)]
    inverse = [[Fraction(int(i == j)) for j in range(m)] for i in range(m)]
    det = Fraction(1)
    for col in range(m):
        pivot_row = next(
            (r for r in range(col, m) if matrix[r][col] != 0), None
        )
        assert pivot_row is not None, "singular test matrix"
        if pivot_row != col:
            matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
            inverse[col], inverse[pivot_row] = inverse[pivot_row], inverse[col]
            det = -det
        pivot = matrix[col][col]
        det *= pivot
        matrix[col] = [v / pivot for v in matrix[col]]
        inverse[col] = [v / pivot for v in inverse[col]]
        for r in range(m):
            if r != col and matrix[r][col] != 0:
                factor = matrix[r][col]
                matrix[r] = [a - factor * b for a, b in zip(matrix[r], matrix[col])]
                inverse[r] = [a - factor * b for a, b in zip(inverse[r], inverse[col])]
    return inverse, abs(det.numerator) // det.denominator if det.denominator == 1 else abs(det)


class TestEtaFile:
    def test_empty_file_is_identity(self):
        file = EtaFile(3)
        assert file.den == 1
        assert file.ftran([1, 2, 3]) == [1, 2, 3]
        assert file.btran([4, 5, 6]) == [4, 5, 6]

    def test_refactor_matches_fraction_inverse(self):
        rng = random.Random(7)
        for _ in range(25):
            m = rng.randint(1, 5)
            while True:
                dense = [
                    [rng.randint(-3, 3) for _ in range(m)] for _ in range(m)
                ]
                columns = [list(col) for col in zip(*dense)]
                try:
                    inverse, det = _dense_inverse_times_den(columns)
                except AssertionError:
                    continue
                break
            file = EtaFile(m)
            file.den = int(det)
            sparse = [
                [(i, column[i]) for i in range(m) if column[i]]
                for column in columns
            ]
            file.refactor(sparse)
            assert file.den == int(det)
            for k in range(m):
                seed = [int(i == k) for i in range(m)]
                got = file.ftran(list(seed))
                want = [inverse[i][k] * det for i in range(m)]
                assert [Fraction(x) for x in got] == want
                got_t = file.btran([int(i == k) for i in range(m)])
                want_t = [inverse[k][i] * det for i in range(m)]
                assert [Fraction(x) for x in got_t] == want_t

    def test_refactor_emits_permutation_when_elimination_reorders(self):
        # A permuted basis (B = anti-diagonal) forces every column onto a
        # row different from its basis position — elimination still succeeds
        # thanks to the free row choice, and the trailing permutation op maps
        # the chosen rows back.
        columns = [[(2, 1)], [(1, 1)], [(0, 1)]]
        file = EtaFile(3)
        file.refactor(columns)
        assert any(op[0] == 2 for op in file.ops)
        assert file.den == 1
        # Represented matrix is den * B^{-1} = the same anti-diagonal.
        assert file.ftran([1, 0, 0]) == [0, 0, 1]
        assert file.ftran([0, 1, 0]) == [0, 1, 0]
        assert file.btran([0, 0, 1]) == [1, 0, 0]

    def test_singular_basis_raises(self):
        columns = [[(0, 1), (1, 2)], [(0, 2), (1, 4)]]
        file = EtaFile(2)
        with pytest.raises(SingularBasisError):
            file.refactor(columns)

    def test_den_mismatch_raises(self):
        file = EtaFile(2)
        file.den = 7  # drifted caller state: true det of I is 1
        with pytest.raises(FactorizationError, match="denominator"):
            file.refactor([[(0, 1)], [(1, 1)]])

    def test_stale_file_refuses_solves(self):
        file = EtaFile(2)
        file.mark_stale(3)
        with pytest.raises(FactorizationError, match="stale"):
            file.ftran([1, 0, 0])
        with pytest.raises(FactorizationError, match="stale"):
            file.btran([1, 0, 0])

    def test_pivot_update_tracks_ground_truth(self):
        # Start from I, pivot column (2, 3) into row 0: B = [[2, 0], [3, 1]].
        file = EtaFile(2)
        file.append_pivot(0, [2, 3])
        assert file.den == 2
        inverse, det = _dense_inverse_times_den([[2, 3], [0, 1]])
        for k in range(2):
            got = file.ftran([int(i == k) for i in range(2)])
            want = [inverse[i][k] * det for i in range(2)]
            assert [Fraction(x) for x in got] == want

    def test_negate_is_self_transpose(self):
        file = EtaFile(2)
        file.append_pivot(0, [2, 3])
        file.append_negate(1)
        ftran_image = [file.ftran([int(i == k) for i in range(2)]) for k in range(2)]
        btran_image = [file.btran([int(i == k) for i in range(2)]) for k in range(2)]
        for i in range(2):
            for j in range(2):
                assert ftran_image[j][i] == btran_image[i][j]

    def test_copy_shares_history_but_not_future(self):
        file = EtaFile(2)
        file.append_pivot(0, [2, 3])
        clone = file.copy()
        clone.append_negate(0)
        assert len(file.ops) == 1
        assert len(clone.ops) == 2
        assert clone.update_ops == file.update_ops + 1

    def test_pickle_round_trip(self):
        file = EtaFile(3)
        file.append_pivot(1, [0, 2, -1])
        file.append_negate(0)
        restored = pickle.loads(pickle.dumps(file))
        assert restored.den == file.den
        assert restored.ops == file.ops
        assert restored.ftran([1, 1, 1]) == file.ftran([1, 1, 1])


# --------------------------------------------------------------------------- #
# Plumbing: env var, statistics flow, sparse encoding fast path
# --------------------------------------------------------------------------- #
class TestCoreSelection:
    def test_env_default_and_override(self):
        with _ForcedCore(None):
            assert _default_core() == "revised"
        with _ForcedCore("tableau"):
            assert _default_core() == "tableau"
            assert IlpSolver().core == "tableau"
        with _ForcedCore("Revised"):
            assert _default_core() == "revised"

    def test_env_typo_fails_loudly(self):
        with _ForcedCore("revsied"):
            with pytest.raises(ValueError, match="REPRO_ILP_CORE"):
                _default_core()
            with pytest.raises(ValueError, match="REPRO_ILP_CORE"):
                IlpSolver()

    def test_explicit_core_beats_environment(self):
        with _ForcedCore("tableau"):
            assert IlpSolver(core="revised").core == "revised"

    def test_unknown_core_argument_rejected(self):
        with pytest.raises(ValueError, match="unknown simplex core"):
            IlpSolver(core="dense")
        with pytest.raises(ValueError, match="unknown simplex core"):
            IncrementalIlpEngine(LinearProblem(), core="dense")

    def test_revised_statistics_flow(self):
        # A second lexicographic stage appends an objective-fixing row, which
        # marks the eta file stale and forces at least one refactorisation.
        problem = _branching_heavy()
        problem.add_objective({"x0": -1, "x4": 1})
        solver = IlpSolver(core="revised")
        assert solver.solve(problem) is not None
        stats = solver.statistics_summary()
        assert stats["simplex_core"] == "revised"
        assert stats["refactorizations"] >= 1
        assert stats["eta_entries"] > 0
        assert stats["basis_nnz"] > 0
        assert stats["tableau_cells"] > 0
        # The whole point: the factored basis stores far fewer non-zeros
        # than the dense tableau stores cells.
        assert stats["basis_nnz"] < stats["tableau_cells"]

    def test_sparse_rows_save_cells_on_wide_problems(self):
        # Disjoint sparse constraints over many columns: the dense tableau
        # materialises every zero, the revised core only the entries.
        problem = LinearProblem()
        for index in range(12):
            problem.add_variable(f"x{index}", 0, 4)
        for index in range(0, 12, 2):
            problem.add_constraint(
                {f"x{index}": 1, f"x{index + 1}": 2}, ">=", 3
            )
        problem.add_objective({f"x{index}": 1 for index in range(12)})
        solver = IlpSolver(core="revised")
        assert solver.solve(problem) is not None
        stats = solver.statistics_summary()
        assert 0 < stats["tableau_cells_saved"] < stats["tableau_cells"]

    def test_tableau_core_reports_no_revised_work(self):
        solver = IlpSolver(core="tableau")
        assert solver.solve(_branching_heavy()) is not None
        stats = solver.statistics_summary()
        assert stats["simplex_core"] == "tableau"
        assert stats["refactorizations"] == 0
        assert stats["eta_entries"] == 0
        assert stats["basis_nnz"] == 0
        assert stats["tableau_cells_saved"] == 0

    def test_integer_rows_never_take_the_dense_detour(self):
        # The all-integer fast path of _encode_integer_row must keep sparse
        # inputs sparse: scheduler-shaped integer problems encode every row
        # sparsely and the dense re-encode counter stays at zero.
        rng = random.Random(4)
        solver = IlpSolver(core="revised")
        for _ in range(5):
            solver.solve(_random_problem(rng))
        stats = solver.statistics_summary()
        assert stats["sparse_encoded_rows"] > 0
        assert stats["dense_encode_rows"] == 0

    def test_fractional_rows_fall_back_to_dense_encode(self):
        problem = LinearProblem()
        problem.add_variable("x", 0, 5)
        problem.add_constraint({"x": Fraction(1, 3)}, "<=", Fraction(4, 3))
        problem.add_objective({"x": -1})
        solver = IlpSolver(core="revised")
        solution = solver.solve(problem)
        assert solution is not None
        assert solution.assignment["x"] == 4
        assert solver.statistics_summary()["dense_encode_rows"] > 0


class TestRevisedTableauMechanics:
    def test_copy_is_shallow_and_independent(self):
        stats = __import__(
            "repro.ilp.engine", fromlist=["EngineStatistics"]
        ).EngineStatistics()
        tableau = _RevisedTableau(
            [(((0, 1), (2, 1)), 4), (((1, 1), (3, 1)), 5)],
            basis=[2, 3],
            n_columns=4,
            stats=stats,
            spans=[7, 7, None, None],
        )
        clone = tableau.copy()
        clone.add_le_row([1, 1], 6)
        assert len(tableau.rows) == 2
        assert len(clone.rows) == 3
        assert tableau.file.stale is False
        assert clone.file.stale is True
        # Copy-on-write column index: the parent's entry lists are untouched.
        assert all(len(entries) <= 2 for entries in tableau.cols)

    def test_stored_cells_counts_sparse_entries_only(self):
        stats = __import__(
            "repro.ilp.engine", fromlist=["EngineStatistics"]
        ).EngineStatistics()
        tableau = _RevisedTableau(
            [(((0, 1), (2, 1)), 4), (((1, 1), (3, 1)), 5)],
            basis=[2, 3],
            n_columns=4,
            stats=stats,
        )
        # 4 row entries + 2 rhs << the 2 * (4 + 1) cells of the dense block.
        assert tableau.stored_cells() == 4 + 2

    def test_free_variables_and_cuts_through_the_revised_core(self):
        # Free variables split into column pairs and branch & bound adds GE
        # cuts as add_le_row on negated coefficients: both paths must agree
        # with the oracle.
        problem = LinearProblem()
        problem.add_variable("x", None, None)
        problem.add_variable("y", 0, 6)
        problem.add_constraint({"x": 2, "y": 3}, ">=", 7)
        problem.add_constraint({"x": 1, "y": -1}, "<=", 2)
        problem.add_objective({"x": 1, "y": 2})
        revised = IlpSolver(engine="incremental", core="revised")
        solution = revised.solve(problem)
        oracle = IlpSolver(engine="oracle").solve(problem)
        assert revised.engine_fallbacks == 0
        assert solution is not None and oracle is not None
        assert solution.objective_values == oracle.objective_values
        assert problem.is_feasible_assignment(solution.assignment)
