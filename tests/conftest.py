"""Shared fixtures: small SCoPs used across the test modules."""

from __future__ import annotations

import pytest

from repro.model import ScopBuilder


def build_listing1():
    """The paper's Listing 1: two independent statements, interchange wanted for S0."""
    b = ScopBuilder("listing1", parameters={"N": 16, "M": 6})
    N, M = b.parameters("N", "M")
    b.array("c", M, N)
    b.array("a", M, N)
    b.array("d", N, M)
    b.array("e", N, M)
    with b.loop("i", 0, N) as i:
        with b.loop("j", 0, M) as j:
            b.statement(writes=[("c", [j, i])], reads=[("a", [j, i])], text="c[j][i] = a[j][i]*b;")
            b.statement(writes=[("d", [i, j])], reads=[("e", [i, j])], text="d[i][j] = e[i][j]*x;")
    return b.build()


def build_gemm(ni=10, nj=10, nk=10):
    """A small gemm with an initialisation statement and an update statement."""
    b = ScopBuilder("gemm", parameters={"NI": ni, "NJ": nj, "NK": nk})
    NI, NJ, NK = b.parameters("NI", "NJ", "NK")
    b.array("C", NI, NJ)
    b.array("A", NI, NK)
    b.array("B", NK, NJ)
    with b.loop("i", 0, NI) as i:
        with b.loop("j", 0, NJ) as j:
            b.statement(writes=[("C", [i, j])], reads=[("C", [i, j])], text="C[i][j] *= beta;")
            with b.loop("k", 0, NK) as k:
                b.statement(
                    writes=[("C", [i, j])],
                    reads=[("C", [i, j]), ("A", [i, k]), ("B", [k, j])],
                    text="C[i][j] += alpha*A[i][k]*B[k][j];",
                )
    return b.build()


def build_jacobi_1d(tsteps=6, n=16):
    """A small jacobi-1d (two statements, time-carried dependences)."""
    b = ScopBuilder("jacobi-1d", parameters={"TSTEPS": tsteps, "N": n})
    TSTEPS, N = b.parameters("TSTEPS", "N")
    b.array("A", N)
    b.array("B", N)
    with b.loop("t", 0, TSTEPS) as t:
        with b.loop("i", 1, N - 1) as i:
            b.statement(
                writes=[("B", [i])], reads=[("A", [i - 1]), ("A", [i]), ("A", [i + 1])]
            )
        with b.loop("i2", 1, N - 1) as i2:
            b.statement(
                writes=[("A", [i2])], reads=[("B", [i2 - 1]), ("B", [i2]), ("B", [i2 + 1])]
            )
    return b.build()


def build_sequence():
    """Three simple statements with a producer/consumer chain (fusion playground)."""
    b = ScopBuilder("sequence", parameters={"N": 12})
    (N,) = b.parameters("N")
    b.array("A", N)
    b.array("B", N)
    b.array("C", N)
    with b.loop("i", 0, N) as i:
        b.statement(writes=[("A", [i])], reads=[], text="A[i] = i;")
    with b.loop("j", 0, N) as j:
        b.statement(writes=[("B", [j])], reads=[("A", [j])], text="B[j] = 2*A[j];")
    with b.loop("k", 0, N) as k:
        b.statement(writes=[("C", [k])], reads=[("B", [k])], text="C[k] = B[k] + 1;")
    return b.build()


@pytest.fixture
def listing1_scop():
    return build_listing1()


@pytest.fixture
def gemm_scop():
    return build_gemm()


@pytest.fixture
def jacobi_scop():
    return build_jacobi_1d()


@pytest.fixture
def sequence_scop():
    return build_sequence()
