"""Tests of the compilation service: store, wire format, HTTP front door.

Covers the persistent result store (TTL expiry, eviction, schema-version
mismatch, LRU front), the session's store integration (cross-session hits
with zero scheduler invocations), the wire format's explicit error codes,
the token/capability auth paths (401/403), structured error envelopes on
malformed payloads, the async job lifecycle, and — in a real two-process
test — bit-identical results served from a shared store file.
"""

from __future__ import annotations

import importlib.util
import json
import sqlite3
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

# Load the kernel builders from this directory's conftest by path: a bare
# ``import conftest`` can resolve to benchmarks/conftest.py when the whole
# repository is collected in one run.
_spec = importlib.util.spec_from_file_location(
    "_service_test_kernels", Path(__file__).with_name("conftest.py")
)
_kernels = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_kernels)
build_gemm = _kernels.build_gemm
build_jacobi_1d = _kernels.build_jacobi_1d
build_listing1 = _kernels.build_listing1
from repro.model.schedule import Schedule, StatementSchedule
from repro.pipeline import CompilationJob, Session, result_fingerprint
from repro.pipeline.result import RESULT_SCHEMA_VERSION, CompilationResult
from repro.pipeline.serialize import SerializationError, encode_scop
from repro.polyhedra.affine import AffineExpr
from repro.scheduler.strategies import isl_style, pluto_style
from repro.service import (
    CompilationServer,
    MemoryResultStore,
    ServiceAuth,
    ServiceClient,
    ServiceClientError,
    SqliteResultStore,
    WireError,
    decode_compile_request,
    encode_compile_request,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# --------------------------------------------------------------------------- #
# Result serialisation round trips
# --------------------------------------------------------------------------- #
class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


@pytest.fixture(scope="module")
def compiled_gemm() -> CompilationResult:
    return Session(machine="Intel1").compile(build_gemm(6, 6, 6))


def test_result_round_trip_on_real_compile(compiled_gemm):
    payload = json.dumps(compiled_gemm.to_dict(), sort_keys=True)
    decoded = CompilationResult.from_dict(json.loads(payload))
    assert decoded == compiled_gemm
    assert decoded.schedule == compiled_gemm.schedule
    assert decoded.report.cycles == compiled_gemm.report.cycles


def test_compilation_job_round_trip():
    job = CompilationJob(
        scop=build_listing1(),
        config=pluto_style(),
        machine="Intel1",
        parameter_values={"N": 8},
        label="probe",
    )
    decoded = CompilationJob.from_dict(json.loads(json.dumps(job.to_dict())))
    # Statement bodies cannot cross the boundary, so the SCoPs are compared
    # through their (body-free) serialised form.
    assert encode_scop(decoded.scop) == encode_scop(job.scop)
    assert decoded.config.to_json() == job.config.to_json()
    assert decoded.machine == "Intel1"
    assert decoded.parameter_values == {"N": 8}
    assert decoded.label == "probe"


def test_from_dict_rejects_unknown_schema_version(compiled_gemm):
    payload = compiled_gemm.to_dict()
    payload["schema_version"] = RESULT_SCHEMA_VERSION + 1
    with pytest.raises(SerializationError) as excinfo:
        CompilationResult.from_dict(payload)
    assert excinfo.value.code == "schema_version_mismatch"


_fractions = st.fractions(min_value=-8, max_value=8, max_denominator=4)
_names = st.sampled_from(["i", "j", "k", "N", "M"])
_exprs = st.builds(
    lambda terms, constant: AffineExpr(dict(terms), constant),
    st.dictionaries(_names, _fractions, max_size=3),
    _fractions,
)


@st.composite
def _schedules(draw) -> Schedule:
    schedule = Schedule()
    for index in range(draw(st.integers(min_value=1, max_value=3))):
        name = f"S{index}"
        rows = draw(st.lists(_exprs, min_size=1, max_size=3))
        schedule.statements[name] = StatementSchedule(name, tuple(rows))
    n_dims = schedule.n_dims
    schedule.bands = draw(
        st.lists(st.integers(min_value=0, max_value=3), min_size=n_dims, max_size=n_dims)
    )
    schedule.parallel_dims = draw(
        st.lists(st.booleans(), min_size=n_dims, max_size=n_dims)
    )
    return schedule


@settings(max_examples=60, deadline=None)
@given(
    schedule=_schedules(),
    timings=st.dictionaries(
        st.sampled_from(["dependences", "schedule", "evaluate"]),
        st.floats(min_value=0, max_value=10, allow_nan=False),
        max_size=3,
    ),
    diagnostics=st.lists(st.text(max_size=20), max_size=3),
    legal=st.none() | st.booleans(),
    cycles=st.none() | st.floats(min_value=0, max_value=1e9, allow_nan=False),
    failed=st.booleans(),
)
def test_result_round_trip_property(schedule, timings, diagnostics, legal, cycles, failed):
    """to_dict/from_dict is the identity through a JSON text round trip."""
    result = CompilationResult(
        kernel="prop",
        configuration="cfg",
        machine=None,
        schedule=schedule,
        scheduling=None,
        legal=legal,
        cycles=cycles,
        stage_timings=dict(timings),
        diagnostics=list(diagnostics),
        failed=failed,
    )
    decoded = CompilationResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert decoded == result


# --------------------------------------------------------------------------- #
# Persistent store semantics
# --------------------------------------------------------------------------- #
def test_store_put_get_and_lru_front(tmp_path, compiled_gemm):
    store = SqliteResultStore(tmp_path / "store.sqlite", memory_entries=1)
    store.put("fp-a", compiled_gemm)
    store.put("fp-b", compiled_gemm)
    assert store.get("fp-a") == compiled_gemm  # sqlite (a was evicted from the LRU)
    assert store.get("fp-a") == compiled_gemm  # now the LRU front
    stats = store.stats()
    assert stats["entries"] == 2
    assert stats["lru_entries"] == 1
    assert stats["lru_hits"] >= 1
    assert store.get("missing") is None
    assert store.stats()["misses"] == 1
    store.close()


def test_store_ttl_expiry(tmp_path, compiled_gemm):
    clock = FakeClock()
    store = SqliteResultStore(tmp_path / "store.sqlite", ttl=10.0, clock=clock)
    store.put("fp", compiled_gemm)
    assert store.get("fp") == compiled_gemm
    clock.now += 11.0
    assert store.get("fp") is None
    assert store.stats()["expired"] >= 1
    # A per-put TTL override outlives the default.
    store.put("fp-long", compiled_gemm, ttl=100.0)
    clock.now += 50.0
    assert store.get("fp-long") is not None
    store.close()


def test_store_eviction(tmp_path, compiled_gemm):
    store = SqliteResultStore(tmp_path / "store.sqlite")
    store.put("fp-a", compiled_gemm)
    store.put("fp-b", compiled_gemm)
    assert store.evict("fp-a") == 1
    assert store.get("fp-a") is None
    assert store.evict() == 1  # drop everything remaining
    assert store.stats()["entries"] == 0
    store.close()


def test_store_schema_version_mismatch_is_a_miss(tmp_path, compiled_gemm):
    path = tmp_path / "store.sqlite"
    store = SqliteResultStore(path)
    store.put("fp", compiled_gemm)
    store.close()
    # Simulate a row written by an incompatible (newer) version of the code.
    connection = sqlite3.connect(path)
    connection.execute(
        "UPDATE results SET schema_version = ? WHERE fingerprint = 'fp'",
        (RESULT_SCHEMA_VERSION + 1,),
    )
    connection.commit()
    connection.close()
    store = SqliteResultStore(path)
    assert store.get("fp") is None
    assert store.stats()["schema_mismatches"] == 1
    assert store.stats()["entries"] == 0  # the stale row was dropped
    store.close()


def test_memory_store_shares_the_contract(compiled_gemm):
    clock = FakeClock()
    store = MemoryResultStore(ttl=10.0, clock=clock)
    store.put("fp", compiled_gemm)
    fetched = store.get("fp")
    assert fetched == compiled_gemm
    assert fetched is not compiled_gemm  # a fresh decode, never a shared object
    clock.now += 11.0
    assert store.get("fp") is None
    assert store.stats()["expired"] == 1
    store.put("fp", compiled_gemm)
    assert store.evict("fp") == 1
    assert store.stats()["entries"] == 0


def test_store_corrupt_payload_degrades_to_miss(tmp_path, compiled_gemm):
    path = tmp_path / "store.sqlite"
    store = SqliteResultStore(path, memory_entries=0)
    store.put("fp", compiled_gemm)
    connection = sqlite3.connect(path)
    connection.execute("UPDATE results SET payload = '{not json' WHERE fingerprint = 'fp'")
    connection.commit()
    connection.close()
    assert store.get("fp") is None
    store.close()


# --------------------------------------------------------------------------- #
# Session + store integration
# --------------------------------------------------------------------------- #
def test_session_store_hit_skips_scheduler(tmp_path, monkeypatch):
    path = tmp_path / "store.sqlite"
    first = Session(machine="Intel1", store=SqliteResultStore(path))
    outcome = first.compile_with_origin(build_gemm(6, 6, 6))
    assert outcome.origin == "miss"
    assert outcome.fingerprint is not None
    assert first.statistics["store_puts"] == 1
    assert any(d.startswith("cache: miss") for d in outcome.result.diagnostics)

    # A different session (standing in for another process): the scheduler
    # must never run.
    import repro.scheduler.core as core

    def explode(self):
        raise AssertionError("scheduler invoked despite a persistent store hit")

    monkeypatch.setattr(core.PolyTOPSScheduler, "schedule", explode)
    second = Session(machine="Intel1", store=SqliteResultStore(path))
    hit = second.compile_with_origin(build_gemm(6, 6, 6))
    assert hit.origin == "store"
    assert hit.fingerprint == outcome.fingerprint
    assert hit.result.schedule == outcome.result.schedule
    assert hit.result.to_dict()["schedule"] == outcome.result.to_dict()["schedule"]
    assert second.statistics["store_hits"] == 1
    assert second.statistics["memory_hits"] == 0
    assert any("persistent store hit" in d for d in hit.result.diagnostics)
    # The store hit seeds the in-memory cache: the next compile is a memory hit.
    again = second.compile_with_origin(build_gemm(6, 6, 6))
    assert again.origin == "memory"
    assert second.statistics["memory_hits"] == 1


def test_session_skips_store_for_dynamic_callbacks(tmp_path):
    session = Session(machine="Intel1", store=SqliteResultStore(tmp_path / "store.sqlite"))
    outcome = session.compile_with_origin(build_listing1(), isl_style())
    assert outcome.origin == "miss"
    assert outcome.fingerprint is None
    assert session.statistics["store_skips"] == 1
    assert session.statistics["store_puts"] == 0


def test_session_without_store_behaves_as_before():
    session = Session(machine="Intel1")
    first = session.compile_with_origin(build_listing1())
    assert first.origin == "miss" and first.fingerprint is None
    second = session.compile_with_origin(build_listing1())
    assert second.origin == "memory"
    assert session.statistics["result_hits"] == 1
    assert session.statistics["memory_hits"] == 1


def test_result_fingerprint_sensitivity():
    scop = build_gemm(6, 6, 6)
    base = result_fingerprint(scop, pluto_style(), knobs=(True, False, (8, 8, 8)))
    assert base == result_fingerprint(scop, pluto_style(), knobs=(True, False, (8, 8, 8)))
    assert base != result_fingerprint(scop, pluto_style(), knobs=(False, False, (8, 8, 8)))
    assert base != result_fingerprint(
        scop, pluto_style(), parameter_values={"NI": 32}, knobs=(True, False, (8, 8, 8))
    )
    assert base != result_fingerprint(build_jacobi_1d(), pluto_style(), knobs=(True, False, (8, 8, 8)))


# --------------------------------------------------------------------------- #
# Wire format validation
# --------------------------------------------------------------------------- #
def test_wire_round_trip():
    request = encode_compile_request(
        build_listing1(), pluto_style(), "Intel1", {"N": 8}, "wire-test"
    )
    decoded = decode_compile_request(json.loads(json.dumps(request)))
    assert encode_scop(decoded["scop"]) == encode_scop(build_listing1())
    assert decoded["config"].to_json() == pluto_style().to_json()
    assert decoded["machine"].name == "Intel1"
    assert decoded["parameter_values"] == {"N": 8}
    assert decoded["label"] == "wire-test"


@pytest.mark.parametrize(
    "mutate, code",
    [
        (lambda p: p.update(wire_version=99), "unsupported_wire_version"),
        (lambda p: p.pop("scop"), "missing_field"),
        (lambda p: p.update(scop={"name": "x"}), "invalid_scop"),
        (lambda p: p.update(config="{not json"), "invalid_config"),
        (lambda p: p.update(machine="no-such-machine"), "unknown_machine"),
        (lambda p: p.update(machine=42), "invalid_machine"),
        (lambda p: p.update(parameter_values={"N": "many"}), "invalid_parameter_values"),
        (lambda p: p.update(label=7), "invalid_label"),
    ],
)
def test_wire_error_codes(mutate, code):
    payload = encode_compile_request(build_listing1(), pluto_style())
    mutate(payload)
    with pytest.raises(WireError) as excinfo:
        decode_compile_request(payload)
    assert excinfo.value.code == code


# --------------------------------------------------------------------------- #
# HTTP front door
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def server(tmp_path_factory):
    store = SqliteResultStore(tmp_path_factory.mktemp("service") / "store.sqlite")
    auth = ServiceAuth(
        {
            "full-token": ("compile", "read", "admin"),
            "read-token": ("read",),
        }
    )
    server = CompilationServer(store=store, auth=auth, machine="Intel1", job_workers=2)
    server.start_in_thread()
    yield server
    server.shutdown()


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, token="full-token")


def test_healthz_is_public(server):
    assert ServiceClient(server.url).healthz()["status"] == "ok"


def test_auth_rejects_missing_and_unknown_tokens(server):
    scop = build_listing1()
    with pytest.raises(ServiceClientError) as excinfo:
        ServiceClient(server.url).compile(scop)
    assert (excinfo.value.status, excinfo.value.code) == (401, "unauthorized")
    with pytest.raises(ServiceClientError) as excinfo:
        ServiceClient(server.url, token="wrong").compile(scop)
    assert (excinfo.value.status, excinfo.value.code) == (401, "unauthorized")


def test_auth_enforces_capabilities(server):
    reader = ServiceClient(server.url, token="read-token")
    with pytest.raises(ServiceClientError) as excinfo:
        reader.compile(build_listing1())
    assert (excinfo.value.status, excinfo.value.code) == (403, "forbidden")
    with pytest.raises(ServiceClientError) as excinfo:
        reader.stats()
    assert (excinfo.value.status, excinfo.value.code) == (403, "forbidden")


def test_compile_and_cache_over_http(client):
    scop = build_gemm(7, 7, 7)
    first = client.compile(scop, pluto_style())
    assert first.cache == "miss"
    assert first.result.legal is True
    assert first.fingerprint
    second = client.compile(scop, pluto_style())
    assert second.cache == "memory"
    assert second.result.schedule == first.result.schedule
    fetched = client.result(first.fingerprint)
    assert fetched.result.schedule == first.result.schedule


def test_unknown_fingerprint_is_404(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client.result("no-such-fingerprint")
    assert (excinfo.value.status, excinfo.value.code) == (404, "result_not_found")


def test_malformed_payload_yields_error_envelope(server):
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        f"{server.url}/v1/compile",
        data=b"{this is not json",
        headers={"Authorization": "Bearer full-token", "Content-Type": "application/json"},
        method="POST",
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    envelope = json.loads(excinfo.value.read().decode())
    assert envelope["error"]["code"] == "invalid_json"
    assert "detail" in envelope["error"]


def test_malformed_wire_payload_yields_wire_code(client, server):
    with pytest.raises(ServiceClientError) as excinfo:
        client._request("POST", "/v1/compile", {"wire_version": 1})
    assert (excinfo.value.status, excinfo.value.code) == (400, "missing_field")


def test_unknown_route_is_404(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client._request("GET", "/v1/nothing")
    assert (excinfo.value.status, excinfo.value.code) == (404, "not_found")


def test_async_job_lifecycle(client):
    job = client.submit(build_jacobi_1d(4, 10), pluto_style(), label="async-test")
    assert job["state"] in ("queued", "running")
    response = client.wait(job["id"])
    description = response["job"]
    assert description["state"] == "done"
    assert description["cache"] == "miss"
    assert description["fingerprint"]
    stages = [entry["stage"] for entry in description["progress"]]
    # Per-stage progress comes from the stage timings the pipeline records.
    assert stages == ["dependences", "schedule", "postprocess", "legality", "codegen", "evaluate"]
    assert all(entry["seconds"] >= 0 for entry in description["progress"])
    result = client.wait_result(job["id"])
    assert result.kernel == "jacobi-1d"
    assert result.configuration == "async-test"


def test_unknown_job_is_404(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client.job("job-none")
    assert (excinfo.value.status, excinfo.value.code) == (404, "job_not_found")


def test_stats_reports_store_and_jobs(client):
    stats = client.stats()
    assert stats["store"]["backend"] == "sqlite"
    assert "memory_hits" in stats["session"]
    assert "store_hits" in stats["session"]
    assert stats["jobs"]["submitted"] >= 1


# --------------------------------------------------------------------------- #
# Two real processes sharing one store file
# --------------------------------------------------------------------------- #
_PROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, sys.argv[2])   # src
sys.path.insert(0, sys.argv[3])   # tests (conftest kernels)
if len(sys.argv) > 4 and sys.argv[4] == "forbid-scheduler":
    import repro.scheduler.core as core
    def explode(self):
        raise AssertionError("scheduler invoked in the second process")
    core.PolyTOPSScheduler.schedule = explode
from conftest import build_gemm
from repro.pipeline import Session
from repro.service.store import SqliteResultStore
session = Session(machine="Intel1", store=SqliteResultStore(sys.argv[1]))
outcome = session.compile_with_origin(build_gemm(6, 6, 6))
print(json.dumps({
    "origin": outcome.origin,
    "fingerprint": outcome.fingerprint,
    "schedule": outcome.result.to_dict()["schedule"],
    "cycles": outcome.result.cycles,
    "store_hits": session.statistics["store_hits"],
}))
"""


def _run_client_process(store_path: Path, *extra: str) -> dict:
    completed = subprocess.run(
        [
            sys.executable,
            "-c",
            _PROCESS_SCRIPT,
            str(store_path),
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            *extra,
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_two_processes_share_bit_identical_results(tmp_path):
    """Acceptance: a second server process answers from the shared store,
    bit-identically, without ever invoking the scheduler."""
    store_path = tmp_path / "shared.sqlite"
    first = _run_client_process(store_path)
    assert first["origin"] == "miss"
    second = _run_client_process(store_path, "forbid-scheduler")
    assert second["origin"] == "store"
    assert second["store_hits"] == 1
    assert second["fingerprint"] == first["fingerprint"]
    assert second["schedule"] == first["schedule"]  # bit-identical serialised rows
    assert second["cycles"] == first["cycles"]
