"""Tests for the unified compilation pipeline (repro.pipeline)."""

from __future__ import annotations

import pytest

from repro.machine import intel_xeon_silver_4215
from repro.pipeline import (
    DEFAULT_STAGES,
    EXPERIMENT_STAGES,
    CompilationJob,
    CompilationResult,
    Session,
    register_stage,
    registered_stages,
    resolve_stage,
    scop_fingerprint,
)
from repro.scheduler import (
    ConfigurationError,
    FusionSpec,
    kernel_specific,
    pluto_style,
    tensor_scheduler_style,
)
from repro.suites.polybench import build_kernel

BATCH_KERNELS = ("atax", "bicg", "mvt", "gesummv")


def _session(**kwargs) -> Session:
    kwargs.setdefault("machine", intel_xeon_silver_4215())
    kwargs.setdefault("stages", EXPERIMENT_STAGES)
    return Session(**kwargs)


class TestCompile:
    def test_structured_result(self, gemm_scop):
        session = Session(machine=intel_xeon_silver_4215())  # full DEFAULT_STAGES
        result = session.compile(gemm_scop, pluto_style())
        assert isinstance(result, CompilationResult)
        assert result.kernel == "gemm"
        assert result.configuration == "pluto-style"
        assert result.machine == "Intel2"
        assert result.ok and not result.failed
        assert result.legal is True
        assert result.schedule.n_dims >= 1
        assert result.dependences
        assert "for" in result.generated_c
        assert result.cycles and result.cycles > 0
        assert set(DEFAULT_STAGES) <= set(result.stage_timings)
        assert "pluto-style" in result.summary()

    def test_compile_without_machine_skips_evaluation(self, gemm_scop):
        session = Session()  # no machine model anywhere
        result = session.compile(gemm_scop, pluto_style())
        assert result.report is None and result.cycles is None
        assert any("evaluation skipped" in note for note in result.diagnostics)
        assert result.legal is True

    def test_default_config_is_pluto_style(self, gemm_scop):
        session = _session()
        result = session.compile(gemm_scop)
        assert result.configuration == "pluto-style"


class TestSessionCaches:
    def test_result_cache_returns_identical_object(self, gemm_scop):
        session = _session()
        first = session.compile(gemm_scop, pluto_style())
        second = session.compile(gemm_scop, pluto_style())
        assert first is second
        assert session.statistics["result_hits"] == 1
        assert session.statistics["result_misses"] == 1

    def test_second_compile_skips_dependence_analysis(self, gemm_scop):
        session = _session()
        session.compile(gemm_scop, pluto_style())
        assert session.statistics["dependence_misses"] == 1
        # Different configuration, same SCoP: dependences come from the cache.
        session.compile(gemm_scop, tensor_scheduler_style())
        assert session.statistics["dependence_misses"] == 1
        assert session.statistics["dependence_hits"] == 1

    def test_cache_is_content_addressed(self):
        # A structurally identical SCoP built twice shares the cache entries.
        session = _session()
        first = session.compile(build_kernel("atax"), pluto_style())
        second = session.compile(build_kernel("atax"), pluto_style())
        assert first is second
        assert scop_fingerprint(build_kernel("atax")) == scop_fingerprint(build_kernel("atax"))

    def test_sizes_share_dependences_but_not_results(self):
        # The structural fingerprint is symbolic: problem sizes do not change
        # the dependences, so both sizes share one dependence-cache entry ...
        small_scop = build_kernel("gemm", size_scale=0.5)
        large_scop = build_kernel("gemm")
        assert scop_fingerprint(small_scop) == scop_fingerprint(large_scop)
        session = _session()
        small = session.compile(small_scop, pluto_style())
        large = session.compile(large_scop, pluto_style())
        # ... while the concrete parameter values key the result cache apart.
        assert session.statistics["dependence_misses"] == 1
        assert small is not large
        assert small.cycles < large.cycles

    def test_clear_drops_caches(self, gemm_scop):
        session = _session()
        session.compile(gemm_scop, pluto_style())
        assert session.cached_results == 1
        session.clear()
        assert session.cached_results == 0

    def test_relabeling_does_not_rerun_the_pipeline(self, gemm_scop):
        session = _session()
        first = session.compile(gemm_scop, pluto_style(), label="isl")
        second = session.compile(gemm_scop, pluto_style())  # default label
        assert session.statistics["result_misses"] == 1  # one pipeline run
        assert first.configuration == "isl"
        assert second.configuration == "pluto-style"
        assert second.schedule is first.schedule  # shared underlying artifacts
        # Repeats under either label keep returning the interned objects.
        assert session.compile(gemm_scop, pluto_style(), label="isl") is first
        assert session.compile(gemm_scop, pluto_style()) is second

    def test_compile_best_picks_minimum_and_caches(self, gemm_scop):
        session = _session()
        candidates = [pluto_style(), tensor_scheduler_style()]
        best = session.compile_best(gemm_scop, candidates, label="best")
        assert best.configuration == "best"
        for config in candidates:
            assert best.cycles <= session.compile(gemm_scop, config).cycles
        assert session.compile_best(gemm_scop, candidates, label="best") is best


class TestCompileMany:
    def test_matches_sequential_compiles(self):
        config = pluto_style()
        sequential = [
            _session().compile(build_kernel(name), config) for name in BATCH_KERNELS
        ]
        batch = _session().compile_many(
            [CompilationJob(build_kernel(name), config) for name in BATCH_KERNELS],
            parallel=4,
        )
        assert [r.kernel for r in batch] == list(BATCH_KERNELS)  # input order kept
        for ours, reference in zip(batch, sequential):
            assert ours.schedule == reference.schedule
            assert ours.cycles == pytest.approx(reference.cycles)
            assert ours.failed == reference.failed

    def test_parallel_equals_serial_on_shared_session(self):
        jobs = [CompilationJob(build_kernel(name), pluto_style()) for name in BATCH_KERNELS]
        serial_session = _session()
        parallel_session = _session()
        serial = serial_session.compile_many(jobs, parallel=None)
        parallel = parallel_session.compile_many(jobs, parallel=4)
        assert [r.schedule for r in serial] == [r.schedule for r in parallel]

    def test_accepts_bare_scops_and_tuples(self, gemm_scop):
        session = _session()
        results = session.compile_many([gemm_scop, (gemm_scop, tensor_scheduler_style())])
        assert results[0].configuration == "pluto-style"
        assert results[1].configuration == "tensor-scheduler-style"

    def test_bad_job_type_raises(self):
        with pytest.raises(TypeError):
            _session().compile_many(["not a job"])


class TestDiagnostics:
    def test_illegal_fusion_is_captured_not_raised(self, sequence_scop):
        # This fusion order contradicts the producer/consumer chain; the bare
        # scheduler raises SchedulingError (see test_scheduler_core), the
        # pipeline reports it as a failed result with diagnostics.
        config = kernel_specific(
            name="illegal",
            fusion=(FusionSpec(dimension=0, groups=(("2",), ("0", "1"))),),
        )
        result = _session().compile(sequence_scop, config)
        assert result.failed and not result.ok
        assert result.error and "SchedulingError" in result.error
        assert any("fell back to the original" in note for note in result.diagnostics)
        # The fallback still yields the original program order plus numbers.
        assert result.scheduling.fallback_to_original is True
        assert result.cycles > 0

    def test_malformed_config_raises_one_shot_but_is_isolated_in_batch(self, gemm_scop):
        bogus = kernel_specific(name="bogus", cost_functions=("no-such-cost",))
        # One-shot compile: a malformed configuration is a programmer error
        # and propagates (matching the historical harness behaviour) ...
        with pytest.raises(ConfigurationError):
            _session().compile(gemm_scop, bogus)
        # ... while batch mode isolates it as a failed structured result.
        results = _session().compile_many([CompilationJob(gemm_scop, bogus)])
        assert results[0].failed
        assert results[0].error and "ConfigurationError" in results[0].error
        assert any("job failed" in note for note in results[0].diagnostics)

    def test_compile_many_isolates_job_failures(self, gemm_scop):
        class Exploding:
            name = "exploding"

            def run(self, context):
                raise RuntimeError("boom")

        session = Session(
            machine=intel_xeon_silver_4215(),
            stages=("dependences", "schedule", Exploding()),
        )
        ok_session_jobs = [
            CompilationJob(gemm_scop, pluto_style(), label="a"),
            CompilationJob(gemm_scop, pluto_style(), label="b"),
        ]
        results = session.compile_many(ok_session_jobs, parallel=2)
        assert all(r.failed for r in results)
        assert all(r.error and "boom" in r.error for r in results)
        assert [r.configuration for r in results] == ["a", "b"]


class TestStageRegistry:
    def test_builtin_stages_registered(self):
        assert {"dependences", "schedule", "postprocess", "legality", "codegen", "evaluate"} <= set(
            registered_stages()
        )

    def test_unknown_stage_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_stage("no-such-stage")
        with pytest.raises(ConfigurationError):
            Session(stages=("no-such-stage",))

    def test_custom_stage_plugs_in(self, gemm_scop):
        class StampStage:
            name = "stamp"

            def run(self, context):
                context.diagnostics.append("stamped")

        register_stage("stamp", StampStage)
        try:
            session = Session(
                machine=intel_xeon_silver_4215(), stages=(*EXPERIMENT_STAGES, "stamp")
            )
            result = session.compile(gemm_scop, pluto_style())
            assert "stamped" in result.diagnostics
            assert "stamp" in result.stage_timings
        finally:
            from repro.pipeline import stages as stages_module

            stages_module._REGISTRY.pop("stamp", None)


class TestHarnessShim:
    def test_harness_owns_no_private_caches(self):
        from repro.experiments.harness import ExperimentHarness

        assert not hasattr(ExperimentHarness, "_scop_key")
        assert not hasattr(ExperimentHarness, "dependences_for")

    def test_harness_delegates_to_session(self, gemm_scop):
        from repro.experiments.harness import ExperimentHarness

        harness = ExperimentHarness(intel_xeon_silver_4215())
        first = harness.evaluate(gemm_scop, pluto_style())
        second = harness.evaluate(gemm_scop, pluto_style())
        assert first is second  # historical identity guarantee
        assert harness.session.statistics["result_hits"] >= 1
        assert first.result is not None and first.cycles == first.result.cycles

    def test_harness_knob_mutation_reaches_the_session(self, gemm_scop):
        from repro.experiments.harness import ExperimentHarness

        harness = ExperimentHarness(intel_xeon_silver_4215())
        harness.use_tiling = True  # mutated after construction, old-style
        harness.evaluate(gemm_scop, pluto_style())
        assert harness.session.use_tiling is True
